// Package stats aggregates simulation measurements: latency distributions
// per traffic class (using the last-arrival multicast latency definition of
// Nupairoj and Ni), delivered throughput, and saturation heuristics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample distribution.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	P50   float64
	P95   float64
	P99   float64
	Max   float64
	// CI95 is the half-width of a 95% confidence interval for the mean,
	// computed by the method of batch means over the samples in
	// completion order (simulation samples are serially correlated, so
	// per-sample variance would understate the interval). Zero when there
	// are too few samples to batch.
	CI95 float64
}

// Summarize computes a Summary from raw samples (not modified).
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		Min:   s[0],
		P50:   quantile(s, 0.50),
		P95:   quantile(s, 0.95),
		P99:   quantile(s, 0.99),
		Max:   s[len(s)-1],
		CI95:  batchMeansCI(samples),
	}
}

// batchMeansCI computes the 95% confidence half-width for the mean using 10
// batch means over the samples in their original (completion) order.
func batchMeansCI(samples []float64) float64 {
	const batches = 10
	if len(samples) < 2*batches {
		return 0
	}
	per := len(samples) / batches
	means := make([]float64, batches)
	for b := 0; b < batches; b++ {
		sum := 0.0
		for i := b * per; i < (b+1)*per; i++ {
			sum += samples[i]
		}
		means[b] = sum / float64(per)
	}
	grand := 0.0
	for _, m := range means {
		grand += m
	}
	grand /= batches
	varSum := 0.0
	for _, m := range means {
		varSum += (m - grand) * (m - grand)
	}
	stderr := math.Sqrt(varSum / (batches - 1) / batches)
	const t9 = 2.262 // Student t, 9 degrees of freedom, 95%
	return t9 * stderr
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a compact summary.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	ci := ""
	if s.CI95 > 0 {
		ci = fmt.Sprintf("±%.1f", s.CI95)
	}
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f p95=%.1f max=%.1f",
		s.Count, s.Mean, ci, s.P50, s.P95, s.Max)
}

// ClassCollector accumulates per-class measurements inside the measurement
// window.
type ClassCollector struct {
	OpsGenerated int64
	OpsCompleted int64
	// LastArrival holds one sample per completed op: creation to the tail
	// flit at the last destination.
	LastArrival []float64
	// MeanArrival holds the per-op mean destination latency.
	MeanArrival []float64
	// MessagesSent counts injected messages attributed to completed ops.
	MessagesSent int64
	// DeliveredPayloadFlits counts payload flits arriving at destinations.
	DeliveredPayloadFlits int64
}

// CollectiveCollector accumulates per-rep measurements of a phase-structured
// collective workload (barrier, broadcast, ...). Degraded reps (any step lost
// destinations to a fault) complete but yield no latency samples. Per-phase
// samples tile exactly: for every healthy rep the per-phase latencies sum to
// the rep's end-to-end last-arrival latency.
type CollectiveCollector struct {
	// Active marks a run with a collective workload; Kind and NumPhases
	// describe its schedule.
	Active    bool
	Kind      string
	NumPhases int

	Started   int64 // reps begun
	Completed int64 // reps whose every step finished
	Degraded  int64 // completed reps that lost destinations to faults

	// LastArrival is the rep's end-to-end latency: rep start to the last
	// delivery of the final phase. Skew is the arrival spread across the
	// destinations of the final phase (release/broadcast fan-out).
	LastArrival []float64
	Skew        []float64
	// Phases[p] holds per-rep latencies attributed to phase p+1, defined
	// cumulatively (T_p = max(T_{p-1}, last completion of phase p+1)) so
	// they tile LastArrival exactly.
	Phases [][]float64
}

// Collector gathers everything a run reports.
type Collector struct {
	// WarmupEnd and MeasureEnd delimit the measurement window in cycles;
	// ops *created* inside the window are measured.
	WarmupEnd  int64
	MeasureEnd int64

	Unicast   ClassCollector
	Multicast ClassCollector

	// Coll accumulates the collective workload, when one is configured.
	Coll CollectiveCollector

	// DeliveredFlits counts every flit arriving at a NIC in the window
	// (headers included), for raw network throughput.
	DeliveredFlits int64

	// Fault-degradation accounting (whole run, not windowed): ops that lost
	// at least one destination, individual destinations lost, and ops whose
	// every destination was lost.
	OpsDegraded  int64
	DestsDropped int64
	OpsDropped   int64
}

// InWindow reports whether an op created at the given cycle is measured.
func (c *Collector) InWindow(created int64) bool {
	return created >= c.WarmupEnd && created < c.MeasureEnd
}

// Class returns the collector for the given multicast-ness.
func (c *Collector) Class(multicast bool) *ClassCollector {
	if multicast {
		return &c.Multicast
	}
	return &c.Unicast
}

// WindowCycles returns the measurement window length.
func (c *Collector) WindowCycles() int64 { return c.MeasureEnd - c.WarmupEnd }

// ClassResults summarizes one traffic class.
type ClassResults struct {
	OpsGenerated int64
	OpsCompleted int64
	LastArrival  Summary
	MeanArrival  Summary
	// MessagesPerOp is the average number of injected messages a
	// completed op required (1 for hardware bit-string multicast, about d
	// for software schemes).
	MessagesPerOp float64
	// DeliveredPayloadPerNodeCycle is payload throughput at destinations.
	DeliveredPayloadPerNodeCycle float64
}

// CollectiveResults summarizes a run's collective workload.
type CollectiveResults struct {
	// Kind names the collective (barrier, broadcast, all-reduce, ...).
	Kind string
	// Started, Completed, and Degraded count reps (degraded reps finished
	// but lost destinations to faults and yield no latency samples).
	Started   int64
	Completed int64
	Degraded  int64
	// LastArrival is the end-to-end per-rep latency; Skew the arrival
	// spread across the final phase's destinations.
	LastArrival Summary
	Skew        Summary
	// Phases holds per-phase latency summaries; for every rep the phase
	// samples sum exactly to that rep's LastArrival sample.
	Phases []Summary
}

// Results is the full outcome of a run.
type Results struct {
	Cycles    int64 // measurement window length
	Nodes     int
	Unicast   ClassResults
	Multicast ClassResults
	// DeliveredFlitsPerNodeCycle is raw flit throughput at NICs
	// (headers included).
	DeliveredFlitsPerNodeCycle float64
	// Saturated flags a run whose completion rate lagged generation by
	// more than 5% — latencies are then queue-growth artifacts.
	Saturated bool
	// MaxSendQueue is the largest injection queue seen across NICs.
	MaxSendQueue int
	// DrainCycles is how long the post-measurement drain took (0 if the
	// run was cut off instead of drained).
	DrainCycles int64

	// Collective summarizes the collective workload, if one was configured.
	Collective *CollectiveResults `json:",omitempty"`

	// Fault-degradation and verification outcome of the run. Degraded ops
	// completed with some destinations accounted as dropped (they yield no
	// latency samples); InvariantViolations counts checker hits (always 0
	// on a healthy model).
	OpsDegraded         int64
	DestsDropped        int64
	OpsDropped          int64
	InvariantViolations int64
}

// Finalize converts the collector into results for n nodes.
func (c *Collector) Finalize(n int, maxSendQueue int) Results {
	w := float64(c.WindowCycles())
	r := Results{
		Cycles:       c.WindowCycles(),
		Nodes:        n,
		MaxSendQueue: maxSendQueue,
		OpsDegraded:  c.OpsDegraded,
		DestsDropped: c.DestsDropped,
		OpsDropped:   c.OpsDropped,
	}
	class := func(cc *ClassCollector) ClassResults {
		cr := ClassResults{
			OpsGenerated: cc.OpsGenerated,
			OpsCompleted: cc.OpsCompleted,
			LastArrival:  Summarize(cc.LastArrival),
			MeanArrival:  Summarize(cc.MeanArrival),
		}
		if cc.OpsCompleted > 0 {
			cr.MessagesPerOp = float64(cc.MessagesSent) / float64(cc.OpsCompleted)
		}
		if w > 0 {
			cr.DeliveredPayloadPerNodeCycle = float64(cc.DeliveredPayloadFlits) / w / float64(n)
		}
		return cr
	}
	r.Unicast = class(&c.Unicast)
	r.Multicast = class(&c.Multicast)
	if c.Coll.Active {
		cr := &CollectiveResults{
			Kind:        c.Coll.Kind,
			Started:     c.Coll.Started,
			Completed:   c.Coll.Completed,
			Degraded:    c.Coll.Degraded,
			LastArrival: Summarize(c.Coll.LastArrival),
			Skew:        Summarize(c.Coll.Skew),
			Phases:      make([]Summary, len(c.Coll.Phases)),
		}
		for p, samples := range c.Coll.Phases {
			cr.Phases[p] = Summarize(samples)
		}
		r.Collective = cr
	}
	if w > 0 {
		r.DeliveredFlitsPerNodeCycle = float64(c.DeliveredFlits) / w / float64(n)
	}
	gen := c.Unicast.OpsGenerated + c.Multicast.OpsGenerated
	done := c.Unicast.OpsCompleted + c.Multicast.OpsCompleted
	if gen > 20 && float64(done) < 0.95*float64(gen) {
		r.Saturated = true
	}
	return r
}
