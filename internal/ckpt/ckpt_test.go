package ckpt

import (
	"errors"
	"math"
	"testing"
)

// TestPrimitiveRoundTrip checks every primitive through one encode/decode.
func TestPrimitiveRoundTrip(t *testing.T) {
	var e Enc
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U64(math.MaxUint64)
	e.I64(-42)
	e.Int(123456789)
	e.F64(3.14159)
	e.F64(math.Inf(-1))
	e.Bytes64([]byte{1, 2, 3})
	e.Bytes64(nil)
	e.String("hello")

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := d.Bytes64(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes64 = %v", got)
	}
	if got := d.Bytes64(); len(got) != 0 {
		t.Errorf("empty Bytes64 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
}

// TestDecStickyError checks that reads past the end set the error once and
// every subsequent read returns zero without panicking.
func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{1, 2})
	_ = d.U64() // needs 8 bytes, only 2 present
	if d.Err() == nil {
		t.Fatal("expected error on short read")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", d.Err())
	}
	first := d.Err()
	if got := d.Int(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
	d.Fail("later failure")
	if d.Err() != first {
		t.Error("sticky error was overwritten")
	}
}

// TestDecBadBool checks that bool bytes other than 0/1 are corruption.
func TestDecBadBool(t *testing.T) {
	d := NewDec([]byte{2})
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("bool byte 2 gave %v", d.Err())
	}
}

// TestCountBound checks hostile counts are rejected before allocation.
func TestCountBound(t *testing.T) {
	var e Enc
	e.Int(1 << 40) // claims 2^40 elements
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("Count = %d, err %v", n, d.Err())
	}
	var neg Enc
	neg.Int(-1)
	d = NewDec(neg.Bytes())
	if n := d.Count(1); n != 0 || d.Err() == nil {
		t.Fatalf("negative Count = %d, err %v", n, d.Err())
	}
}

// TestWriterReaderRoundTrip checks the container format end to end.
func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("alpha").U64(7)
	w.Section("beta").String("payload")
	w.Section("alpha").Int(9) // appends to the existing section
	blob := w.Finish()

	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a.U64() != 7 || a.Int() != 9 || a.Err() != nil {
		t.Error("alpha section corrupted")
	}
	b, err := r.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "payload" || b.Err() != nil {
		t.Error("beta section corrupted")
	}
	if !r.Has("alpha") || r.Has("gamma") {
		t.Error("Has misreports sections")
	}
	if _, err := r.Section("gamma"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section gave %v", err)
	}
}

// TestReaderRejectsCorruption flips, truncates, and mangles a valid blob and
// checks every case is a structured error.
func TestReaderRejectsCorruption(t *testing.T) {
	w := NewWriter()
	w.Section("s").String("some section payload")
	blob := w.Finish()

	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:len(Magic)+4],
		"bad magic": append([]byte("NOTCKPT1"), blob[len(Magic):]...),
		"truncated": blob[:len(blob)-3],
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-1] ^= 0x01
	cases["bit flip"] = flipped

	for name, b := range cases {
		if _, err := NewReader(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}

	if _, err := NewReader(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}
