// Package ckpt is the checkpoint wire format: a versioned, self-describing
// binary container for cycle-exact simulator state.
//
// A checkpoint is
//
//	magic "MDWCKPT1" | u32 CRC32-IEEE(body) | u64 len(body) | body
//
// where body is a sequence of named, length-prefixed sections:
//
//	u16 len(name) | name | u64 len(payload) | payload
//
// Section payloads are flat streams of little-endian primitives written by
// Enc and read back by Dec. Dec is a sticky-error, bounds-checked reader: a
// truncated or corrupted stream makes every subsequent read return zero
// values and Err() report the first failure — decoding never panics, which
// is what FuzzSnapshotRoundTrip asserts.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies checkpoint files; the trailing digit is the format
// version. Decoders reject anything else.
const Magic = "MDWCKPT1"

// ErrCorrupt is wrapped by every decode failure, so callers can test any
// checkpoint-parsing error with errors.Is.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// corruptf builds an ErrCorrupt-wrapped error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Enc appends little-endian primitives to a growing byte stream.
type Enc struct {
	b []byte
}

// Bytes returns the encoded stream.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int (as int64).
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bits, so values round-trip exactly.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes64 appends a length-prefixed byte slice.
func (e *Enc) Bytes64(v []byte) {
	e.U64(uint64(len(v)))
	e.b = append(e.b, v...)
}

// String appends a length-prefixed string.
func (e *Enc) String(v string) { e.Bytes64([]byte(v)) }

// Dec reads little-endian primitives from a byte stream with sticky-error
// semantics: after the first failure every read returns the zero value and
// Err() reports the failure. All reads are bounds-checked.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

// Fail lets decoding callers record a semantic validation failure (an
// out-of-range value, a count mismatch against the live structure) with the
// same sticky ErrCorrupt semantics as a framing failure.
func (d *Dec) Fail(format string, args ...any) { d.fail(format, args...) }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// take returns the next n bytes, or nil after recording an error.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, d.Remaining())
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// Bool reads a bool; any byte other than 0 or 1 is a corruption error.
func (d *Dec) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte %d", v)
		return false
	}
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Enc.Int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 by bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Count reads an element count and validates it against the remaining
// stream, assuming each element occupies at least elemMinBytes (use 1 for
// variable-size elements). This bounds the allocation a hostile count could
// otherwise trigger.
func (d *Dec) Count(elemMinBytes int) int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if elemMinBytes < 1 {
		elemMinBytes = 1
	}
	if n < 0 || n > int64(d.Remaining()/elemMinBytes) {
		d.fail("count %d exceeds remaining %d bytes (min %d/elem)", n, d.Remaining(), elemMinBytes)
		return 0
	}
	return int(n)
}

// Bytes64 reads a length-prefixed byte slice (copied out of the stream).
func (d *Dec) Bytes64() []byte {
	n := d.Count(1)
	s := d.take(n)
	if s == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, s)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes64()) }

// Writer assembles named sections into a finished checkpoint blob.
type Writer struct {
	names []string
	secs  map[string]*Enc
}

// NewWriter returns an empty checkpoint writer.
func NewWriter() *Writer {
	return &Writer{secs: make(map[string]*Enc)}
}

// Section returns the encoder for a named section, creating it on first
// use. Sections are emitted in first-use order.
func (w *Writer) Section(name string) *Enc {
	if e, ok := w.secs[name]; ok {
		return e
	}
	e := &Enc{}
	w.secs[name] = e
	w.names = append(w.names, name)
	return e
}

// Finish assembles the checkpoint: magic, CRC and length of the body, then
// each section with its name and payload length.
func (w *Writer) Finish() []byte {
	var body Enc
	for _, name := range w.names {
		if len(name) > math.MaxUint16 {
			panic("ckpt: section name too long")
		}
		body.b = binary.LittleEndian.AppendUint16(body.b, uint16(len(name)))
		body.b = append(body.b, name...)
		body.Bytes64(w.secs[name].Bytes())
	}
	out := make([]byte, 0, len(Magic)+12+len(body.b))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body.b))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body.b)))
	out = append(out, body.b...)
	return out
}

// Reader indexes a checkpoint blob by section name after validating magic,
// length, and checksum.
type Reader struct {
	secs map[string][]byte
}

// NewReader parses and validates a checkpoint blob.
func NewReader(b []byte) (*Reader, error) {
	if len(b) < len(Magic)+12 {
		return nil, corruptf("short header: %d bytes", len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, corruptf("bad magic %q", b[:len(Magic)])
	}
	sum := binary.LittleEndian.Uint32(b[len(Magic):])
	blen := binary.LittleEndian.Uint64(b[len(Magic)+4:])
	body := b[len(Magic)+12:]
	if blen != uint64(len(body)) {
		return nil, corruptf("body length %d, header says %d", len(body), blen)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, corruptf("checksum mismatch: %08x != %08x", got, sum)
	}
	r := &Reader{secs: make(map[string][]byte)}
	off := 0
	for off < len(body) {
		if len(body)-off < 2 {
			return nil, corruptf("truncated section name length")
		}
		nlen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body)-off < nlen {
			return nil, corruptf("truncated section name")
		}
		name := string(body[off : off+nlen])
		off += nlen
		if len(body)-off < 8 {
			return nil, corruptf("truncated section %q length", name)
		}
		plen := binary.LittleEndian.Uint64(body[off:])
		off += 8
		if plen > uint64(len(body)-off) {
			return nil, corruptf("section %q claims %d bytes, %d remain", name, plen, len(body)-off)
		}
		if _, dup := r.secs[name]; dup {
			return nil, corruptf("duplicate section %q", name)
		}
		r.secs[name] = body[off : off+int(plen)]
		off += int(plen)
	}
	return r, nil
}

// Section returns a decoder for a named section, or an error if absent.
func (r *Reader) Section(name string) (*Dec, error) {
	b, ok := r.secs[name]
	if !ok {
		return nil, corruptf("missing section %q", name)
	}
	return NewDec(b), nil
}

// Has reports whether a section is present (for optional sections).
func (r *Reader) Has(name string) bool {
	_, ok := r.secs[name]
	return ok
}
