package ckpt

import (
	"sort"

	"mdworm/internal/bitset"
	"mdworm/internal/flit"
)

// Graph serializes the shared object graph of in-flight traffic: ops,
// messages, and worms. Components hold pointers into this graph (a worm may
// sit in several link slots and buffer tables at once), so checkpointing
// encodes each object once, keyed by its engine-assigned unique ID, and
// every component state refers to objects by ID. Decoding rebuilds the
// graph first, then components resolve their references through it —
// restoring the exact aliasing structure of the live simulation.
type Graph struct {
	ops   map[uint64]*flit.Op
	msgs  map[uint64]*flit.Message
	worms map[uint64]*flit.Worm
}

// NewGraph returns an empty object graph.
func NewGraph() *Graph {
	return &Graph{
		ops:   make(map[uint64]*flit.Op),
		msgs:  make(map[uint64]*flit.Message),
		worms: make(map[uint64]*flit.Worm),
	}
}

// AddOp records an op (nil is ignored).
func (g *Graph) AddOp(o *flit.Op) {
	if o == nil {
		return
	}
	g.ops[o.ID] = o
}

// AddMessage records a message and, transitively, its op.
func (g *Graph) AddMessage(m *flit.Message) {
	if m == nil {
		return
	}
	g.msgs[m.ID] = m
	g.AddOp(m.Op)
}

// AddWorm records a worm and, transitively, its message and op.
func (g *Graph) AddWorm(w *flit.Worm) {
	if w == nil {
		return
	}
	g.worms[w.ID] = w
	g.AddMessage(w.Msg)
}

// OpID returns the reference encoding of an op: its ID, or 0 for nil.
// Encoding a pointer that was never added is a checkpoint-writer bug.
func (g *Graph) OpID(o *flit.Op) uint64 {
	if o == nil {
		return 0
	}
	if _, ok := g.ops[o.ID]; !ok {
		panic("ckpt: op referenced but not collected")
	}
	return o.ID
}

// MsgID returns the reference encoding of a message (0 for nil).
func (g *Graph) MsgID(m *flit.Message) uint64 {
	if m == nil {
		return 0
	}
	if _, ok := g.msgs[m.ID]; !ok {
		panic("ckpt: message referenced but not collected")
	}
	return m.ID
}

// WormID returns the reference encoding of a worm (0 for nil).
func (g *Graph) WormID(w *flit.Worm) uint64 {
	if w == nil {
		return 0
	}
	if _, ok := g.worms[w.ID]; !ok {
		panic("ckpt: worm referenced but not collected")
	}
	return w.ID
}

// maxDests bounds decoded destination-set capacities and slice lengths; far
// above any simulated system size, far below an allocation hazard.
const maxDests = 1 << 24

// Encode writes the graph as three ID-sorted tables. Engine IDs start at 1,
// so 0 is free to mean nil.
func (g *Graph) Encode(e *Enc) {
	opIDs := sortedKeys(g.ops)
	e.Int(len(opIDs))
	for _, id := range opIDs {
		o := g.ops[id]
		e.U64(o.ID)
		e.U8(uint8(o.Class))
		e.Int(o.Src)
		e.Int(o.NumDests)
		e.I64(o.Created)
		e.Int(o.Phases)
		e.Int(o.Remaining())
		e.I64(o.FirstArrival)
		e.I64(o.LastArrival)
		e.I64(o.SumArrival)
		e.Int(o.MessagesSent)
		e.Int(o.Dropped)
	}

	msgIDs := sortedKeys(g.msgs)
	e.Int(len(msgIDs))
	for _, id := range msgIDs {
		m := g.msgs[id]
		e.U64(m.ID)
		e.Int(m.Src)
		e.Int(len(m.Dests))
		for _, d := range m.Dests {
			e.Int(d)
		}
		e.U8(uint8(m.Class))
		e.Int(m.PayloadFlits)
		e.Int(m.HeaderFlits)
		e.I64(m.Created)
		e.I64(m.InjectedAt)
		e.U64(g.OpID(m.Op))
		if m.Forward == nil {
			e.Bool(false)
		} else {
			e.Bool(true)
			e.Int(len(m.Forward.Subtree))
			for _, d := range m.Forward.Subtree {
				e.Int(d)
			}
		}
	}

	wormIDs := sortedKeys(g.worms)
	e.Int(len(wormIDs))
	for _, id := range wormIDs {
		w := g.worms[id]
		e.U64(w.ID)
		e.U64(g.MsgID(w.Msg))
		encodeBitset(e, w.Dests)
		e.Bool(w.GoingUp)
		e.Int(w.Hops)
	}
}

// DecodeGraph rebuilds a graph from its encoding. On malformed input the
// decoder's sticky error is set and the partial graph must be discarded.
func DecodeGraph(d *Dec) *Graph {
	g := NewGraph()

	nOps := d.Count(8)
	for i := 0; i < nOps && d.Err() == nil; i++ {
		id := d.U64()
		class := flit.Class(d.U8())
		src := d.Int()
		numDests := d.Int()
		created := d.I64()
		phases := d.Int()
		remaining := d.Int()
		first := d.I64()
		last := d.I64()
		sum := d.I64()
		sent := d.Int()
		dropped := d.Int()
		if d.Err() != nil {
			break
		}
		if id == 0 || numDests < 0 || numDests > maxDests || remaining < 0 || remaining > numDests {
			d.fail("op %d: invalid fields (dests %d, remaining %d)", id, numDests, remaining)
			break
		}
		if _, dup := g.ops[id]; dup {
			d.fail("duplicate op %d", id)
			break
		}
		g.ops[id] = flit.RestoreOp(id, class, src, numDests, created, phases, remaining, first, last, sum, sent, dropped)
	}

	nMsgs := d.Count(8)
	for i := 0; i < nMsgs && d.Err() == nil; i++ {
		m := &flit.Message{ID: d.U64(), Src: d.Int()}
		nd := d.Count(8)
		if nd > maxDests {
			d.fail("message %d: %d destinations", m.ID, nd)
			break
		}
		if nd > 0 {
			m.Dests = make([]int, nd)
			for k := range m.Dests {
				m.Dests[k] = d.Int()
			}
		}
		m.Class = flit.Class(d.U8())
		m.PayloadFlits = d.Int()
		m.HeaderFlits = d.Int()
		m.Created = d.I64()
		m.InjectedAt = d.I64()
		m.Op = g.opAt(d, d.U64())
		if d.Bool() {
			ns := d.Count(8)
			if ns > maxDests {
				d.fail("message %d: %d forward subtree entries", m.ID, ns)
				break
			}
			m.Forward = &flit.ForwardStep{Subtree: make([]int, ns)}
			for k := range m.Forward.Subtree {
				m.Forward.Subtree[k] = d.Int()
			}
		}
		if d.Err() != nil {
			break
		}
		if m.ID == 0 {
			d.fail("message with zero ID")
			break
		}
		if _, dup := g.msgs[m.ID]; dup {
			d.fail("duplicate message %d", m.ID)
			break
		}
		// Flit counts are construction invariants the switches rely on.
		if m.HeaderFlits < 1 || m.PayloadFlits < 0 || m.Len() > maxDests {
			d.fail("message %d: invalid flit counts %d+%d", m.ID, m.HeaderFlits, m.PayloadFlits)
			break
		}
		g.msgs[m.ID] = m
	}

	nWorms := d.Count(8)
	for i := 0; i < nWorms && d.Err() == nil; i++ {
		w := &flit.Worm{ID: d.U64()}
		w.Msg = g.msgAt(d, d.U64())
		w.Dests = decodeBitset(d)
		w.GoingUp = d.Bool()
		w.Hops = d.Int()
		if d.Err() != nil {
			break
		}
		if w.ID == 0 || w.Msg == nil {
			d.fail("worm %d: zero ID or nil message", w.ID)
			break
		}
		if _, dup := g.worms[w.ID]; dup {
			d.fail("duplicate worm %d", w.ID)
			break
		}
		g.worms[w.ID] = w
	}
	return g
}

// opAt resolves a decoded op reference (0 → nil).
func (g *Graph) opAt(d *Dec, id uint64) *flit.Op {
	if id == 0 || d.Err() != nil {
		return nil
	}
	o, ok := g.ops[id]
	if !ok {
		d.fail("dangling op reference %d", id)
	}
	return o
}

// msgAt resolves a decoded message reference (0 → nil).
func (g *Graph) msgAt(d *Dec, id uint64) *flit.Message {
	if id == 0 || d.Err() != nil {
		return nil
	}
	m, ok := g.msgs[id]
	if !ok {
		d.fail("dangling message reference %d", id)
	}
	return m
}

// WormAt resolves a decoded worm reference (0 → nil); unknown IDs set the
// decoder error.
func (g *Graph) WormAt(d *Dec, id uint64) *flit.Worm {
	if id == 0 || d.Err() != nil {
		return nil
	}
	w, ok := g.worms[id]
	if !ok {
		d.fail("dangling worm reference %d", id)
	}
	return w
}

// MsgAt resolves a decoded message reference through the public API.
func (g *Graph) MsgAt(d *Dec, id uint64) *flit.Message { return g.msgAt(d, id) }

// OpAt resolves a decoded op reference through the public API.
func (g *Graph) OpAt(d *Dec, id uint64) *flit.Op { return g.opAt(d, id) }

// Ops returns all collected ops (decode side), for callers that must
// iterate the full set (e.g. the NIC op table).
func (g *Graph) Ops() map[uint64]*flit.Op { return g.ops }

// encodeBitset writes a destination set as capacity plus payload words.
func encodeBitset(e *Enc, s bitset.Set) {
	e.Int(s.Cap())
	words := s.Words()
	e.Int(len(words))
	for _, w := range words {
		e.U64(w)
	}
}

// decodeBitset reads a destination set.
func decodeBitset(d *Dec) bitset.Set {
	capN := d.Int()
	nw := d.Count(8)
	if d.Err() != nil {
		return bitset.Set{}
	}
	if capN < 0 || capN > maxDests || nw != (capN+63)/64 {
		d.fail("bitset: cap %d with %d words", capN, nw)
		return bitset.Set{}
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = d.U64()
	}
	s := bitset.New(capN)
	s.SetWords(words)
	return s
}

// sortedKeys returns map keys in ascending order, for deterministic tables.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
