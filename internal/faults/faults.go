// Package faults defines deterministic, seeded fault plans for the
// simulator: a list of timed events (link failures, stuck ports, central-
// buffer capacity loss, NIC injection stalls) that the core fault driver
// applies through the engine's event loop. A Plan is part of core.Config, so
// it participates in configuration canonicalization and therefore in the
// mdwd content-addressed cache key: two runs that differ only in their fault
// plan hash differently, and the same plan always replays identically.
//
// Plans have two interchangeable encodings: the JSON structure embedded in
// core.Config, and a compact one-line spec for command lines
// (ParseSpec/Spec), e.g.
//
//	link-down@1000:sw3.p2;port-stuck@100+500:sw2.p1;cb-shrink@2000:sw0*16;nic-stall@500+200:n5
package faults

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the fault classes.
type Kind uint8

const (
	// LinkDown permanently fails both directions of a switch port's link
	// pair at worm granularity: a worm mid-transfer finishes, after which
	// the link refuses new worms and routing drops or reroutes around it.
	LinkDown Kind = iota
	// PortStuck stalls the output side of a switch port for a window (or
	// permanently when Duration is 0): flits already on the wire arrive,
	// new sends wait. Nothing is dropped — a permanent stuck port
	// backpressures into the no-progress watchdog's structured
	// DeadlockError instead.
	PortStuck
	// CBShrink removes Chunks chunks from a central-buffer switch's
	// capacity mid-run, modeling partial buffer failure. Free chunks are
	// withdrawn immediately; the remainder is absorbed as in-use chunks
	// drain.
	CBShrink
	// NICStall pauses a NIC's injection for a window (or permanently when
	// Duration is 0); queued messages wait, in-flight worms finish.
	NICStall
)

var kindNames = [...]string{"link-down", "port-stuck", "cb-shrink", "nic-stall"}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a spec-grammar name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q (want %s)", s, strings.Join(kindNames[:], ", "))
}

// MarshalJSON encodes the kind as its spec name, keeping plans readable on
// the wire and stable under canonicalization.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("faults: cannot marshal unknown kind %d", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a spec name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Event is one timed fault. Which target fields are meaningful depends on
// Kind: LinkDown and PortStuck name a switch port, CBShrink names a switch
// and a chunk count, NICStall names a node.
type Event struct {
	Kind Kind `json:"kind"`
	// At is the cycle the fault fires (absolute simulation time).
	At int64 `json:"at"`
	// Duration bounds transient faults (PortStuck, NICStall); 0 means
	// permanent. LinkDown and CBShrink are always permanent.
	Duration int64 `json:"duration,omitempty"`

	Switch int `json:"switch,omitempty"`
	Port   int `json:"port,omitempty"`
	Node   int `json:"node,omitempty"`
	// Chunks is the capacity removed by CBShrink.
	Chunks int `json:"chunks,omitempty"`
}

// Validate checks the event's internal consistency (topology-independent;
// core validates targets against the built fabric).
func (e Event) Validate() error {
	if int(e.Kind) >= len(kindNames) {
		return fmt.Errorf("faults: unknown kind %d", uint8(e.Kind))
	}
	if e.At < 0 {
		return fmt.Errorf("faults: %s at negative cycle %d", e.Kind, e.At)
	}
	if e.Duration < 0 {
		return fmt.Errorf("faults: %s with negative duration %d", e.Kind, e.Duration)
	}
	switch e.Kind {
	case LinkDown, CBShrink:
		if e.Duration != 0 {
			return fmt.Errorf("faults: %s is permanent; duration must be 0", e.Kind)
		}
	}
	switch e.Kind {
	case LinkDown, PortStuck:
		if e.Switch < 0 || e.Port < 0 {
			return fmt.Errorf("faults: %s needs a non-negative switch and port", e.Kind)
		}
	case CBShrink:
		if e.Switch < 0 {
			return fmt.Errorf("faults: cb-shrink needs a non-negative switch")
		}
		if e.Chunks < 1 {
			return fmt.Errorf("faults: cb-shrink must remove >= 1 chunk, got %d", e.Chunks)
		}
	case NICStall:
		if e.Node < 0 {
			return fmt.Errorf("faults: nic-stall needs a non-negative node")
		}
	}
	return nil
}

// spec renders the event in the compact grammar.
func (e Event) spec() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	fmt.Fprintf(&b, "@%d", e.At)
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%d", e.Duration)
	}
	b.WriteByte(':')
	switch e.Kind {
	case LinkDown, PortStuck:
		fmt.Fprintf(&b, "sw%d.p%d", e.Switch, e.Port)
	case CBShrink:
		fmt.Fprintf(&b, "sw%d*%d", e.Switch, e.Chunks)
	case NICStall:
		fmt.Fprintf(&b, "n%d", e.Node)
	}
	return b.String()
}

// Plan is a deterministic schedule of fault events. The zero Plan is the
// healthy run.
type Plan struct {
	Events []Event `json:"events,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// less orders events canonically: by time, then kind, then target.
func less(a, b Event) bool {
	switch {
	case a.At != b.At:
		return a.At < b.At
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Switch != b.Switch:
		return a.Switch < b.Switch
	case a.Port != b.Port:
		return a.Port < b.Port
	case a.Node != b.Node:
		return a.Node < b.Node
	case a.Duration != b.Duration:
		return a.Duration < b.Duration
	default:
		return a.Chunks < b.Chunks
	}
}

// Normalized returns a copy of the plan with events in canonical order, so
// that plans listing the same events in any order canonicalize (and hash)
// identically.
func (p Plan) Normalized() Plan {
	if len(p.Events) == 0 {
		return Plan{}
	}
	ev := append([]Event(nil), p.Events...)
	sort.SliceStable(ev, func(i, j int) bool { return less(ev[i], ev[j]) })
	return Plan{Events: ev}
}

// Spec renders the plan in the compact one-line grammar, in canonical order.
// ParseSpec(p.Spec()) round-trips.
func (p Plan) Spec() string {
	n := p.Normalized()
	parts := make([]string, len(n.Events))
	for i, e := range n.Events {
		parts[i] = e.spec()
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the compact grammar: semicolon-separated events of the
// form kind@at[+duration]:target, where target is swN.pM (link-down,
// port-stuck), swN*chunks (cb-shrink), or nN (nic-stall). Whitespace around
// events is ignored; an empty string is the empty plan. The result is
// validated and normalized.
func ParseSpec(s string) (Plan, error) {
	var p Plan
	for _, raw := range strings.Split(s, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: %q: %w", part, err)
		}
		p.Events = append(p.Events, e)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p.Normalized(), nil
}

func parseEvent(s string) (Event, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing '@' (want kind@at[:target])")
	}
	kind, err := ParseKind(kindStr)
	if err != nil {
		return Event{}, err
	}
	timing, target, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':' before target")
	}
	e := Event{Kind: kind}
	atStr, durStr, hasDur := strings.Cut(timing, "+")
	if e.At, err = strconv.ParseInt(atStr, 10, 64); err != nil {
		return Event{}, fmt.Errorf("bad cycle %q", atStr)
	}
	if hasDur {
		if e.Duration, err = strconv.ParseInt(durStr, 10, 64); err != nil {
			return Event{}, fmt.Errorf("bad duration %q", durStr)
		}
		if e.Duration == 0 {
			return Event{}, fmt.Errorf("explicit duration must be > 0 (omit '+0' for permanent)")
		}
	}
	switch kind {
	case LinkDown, PortStuck:
		swStr, portStr, ok := strings.Cut(target, ".p")
		if !ok || !strings.HasPrefix(swStr, "sw") {
			return Event{}, fmt.Errorf("bad target %q (want swN.pM)", target)
		}
		if e.Switch, err = strconv.Atoi(swStr[2:]); err != nil {
			return Event{}, fmt.Errorf("bad switch %q", swStr)
		}
		if e.Port, err = strconv.Atoi(portStr); err != nil {
			return Event{}, fmt.Errorf("bad port %q", portStr)
		}
	case CBShrink:
		swStr, chunkStr, ok := strings.Cut(target, "*")
		if !ok || !strings.HasPrefix(swStr, "sw") {
			return Event{}, fmt.Errorf("bad target %q (want swN*chunks)", target)
		}
		if e.Switch, err = strconv.Atoi(swStr[2:]); err != nil {
			return Event{}, fmt.Errorf("bad switch %q", swStr)
		}
		if e.Chunks, err = strconv.Atoi(chunkStr); err != nil {
			return Event{}, fmt.Errorf("bad chunk count %q", chunkStr)
		}
	case NICStall:
		if !strings.HasPrefix(target, "n") {
			return Event{}, fmt.Errorf("bad target %q (want nN)", target)
		}
		if e.Node, err = strconv.Atoi(target[1:]); err != nil {
			return Event{}, fmt.Errorf("bad node %q", target)
		}
	}
	return e, nil
}
