package faults

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseSpecExample(t *testing.T) {
	p, err := ParseSpec("link-down@1000:sw3.p2; port-stuck@100+500:sw2.p1 ;cb-shrink@2000:sw0*16;nic-stall@500+200:n5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: PortStuck, At: 100, Duration: 500, Switch: 2, Port: 1},
		{Kind: NICStall, At: 500, Duration: 200, Node: 5},
		{Kind: LinkDown, At: 1000, Switch: 3, Port: 2},
		{Kind: CBShrink, At: 2000, Switch: 0, Chunks: 16},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(p.Events), len(want))
	}
	for i := range want {
		if p.Events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, p.Events[i], want[i])
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"link-down@0:sw0.p0",
		"nic-stall@500+200:n5;link-down@1000:sw3.p2",
		"cb-shrink@2000:sw0*16;cb-shrink@2000:sw1*8",
		"port-stuck@100+500:sw2.p1;port-stuck@100:sw2.p1",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		q, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.Spec(), err)
		}
		if q.Spec() != p.Spec() {
			t.Fatalf("%q: spec not a fixpoint: %q vs %q", s, p.Spec(), q.Spec())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"flood@10:sw0.p0",          // unknown kind
		"link-down@:sw0.p0",        // missing cycle
		"link-down@-5:sw0.p0",      // negative cycle
		"link-down@10",             // missing target
		"link-down@10:n3",          // wrong target shape
		"link-down@10+50:sw0.p0",   // link-down is permanent
		"cb-shrink@10+50:sw0*4",    // cb-shrink is permanent
		"cb-shrink@10:sw0*0",       // must remove >= 1 chunk
		"cb-shrink@10:sw0.p1",      // wrong target shape
		"nic-stall@10:sw0.p1",      // wrong target shape
		"nic-stall@10+0:n1",        // explicit zero duration
		"port-stuck@10+-3:sw0.p0",  // negative duration
		"port-stuck@10:sw-1.p0",    // negative switch
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Fatalf("%q: expected parse error", s)
		}
	}
}

func TestNormalizedOrderInsensitive(t *testing.T) {
	a, err := ParseSpec("link-down@1000:sw3.p2;nic-stall@500+200:n5;link-down@1000:sw1.p0")
	if err != nil {
		t.Fatal(err)
	}
	b := Plan{Events: []Event{a.Events[2], a.Events[0], a.Events[1]}}.Normalized()
	if a.Spec() != b.Spec() {
		t.Fatalf("order-sensitive normalization: %q vs %q", a.Spec(), b.Spec())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, err := ParseSpec("link-down@1000:sw3.p2;port-stuck@100+500:sw2.p1;nic-stall@500+200:n5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	// Kinds travel as spec names, not opaque numbers.
	if !strings.Contains(string(b), `"kind":"link-down"`) {
		t.Fatalf("kind not encoded by name: %s", b)
	}
	var q Plan
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if q.Spec() != p.Spec() {
		t.Fatalf("JSON round trip changed the plan: %q vs %q", p.Spec(), q.Spec())
	}
	var bad Plan
	if err := json.Unmarshal([]byte(`{"events":[{"kind":"meteor","at":1}]}`), &bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEmptyPlan(t *testing.T) {
	var p Plan
	if !p.Empty() || p.Spec() != "" || p.Validate() != nil {
		t.Fatal("zero plan is not the healthy run")
	}
	q, err := ParseSpec("  ;  ; ")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Empty() {
		t.Fatal("blank spec not empty")
	}
}

// FuzzFaultPlan checks that any spec the parser accepts re-renders and
// re-parses to the same canonical plan, through both encodings.
func FuzzFaultPlan(f *testing.F) {
	f.Add("link-down@1000:sw3.p2")
	f.Add("port-stuck@100+500:sw2.p1;port-stuck@100:sw2.p1")
	f.Add("cb-shrink@2000:sw0*16")
	f.Add("nic-stall@500+200:n5;link-down@0:sw0.p0")
	f.Add(" ; ;nic-stall@1:n0; ")
	f.Add("link-down@9223372036854775807:sw0.p0")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseSpec(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails validation: %v", err)
		}
		spec := p.Spec()
		q, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("rendered spec %q does not re-parse: %v", spec, err)
		}
		if q.Spec() != spec {
			t.Fatalf("spec not a fixpoint: %q vs %q", spec, q.Spec())
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var r Plan
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if r.Spec() != spec {
			t.Fatalf("JSON round trip changed the plan: %q vs %q", spec, r.Spec())
		}
	})
}
