package inputbuf

import (
	"mdworm/internal/bitset"
	"mdworm/internal/flit"
	"mdworm/internal/switches"
)

// In-switch barrier combining for the input-buffered switch — the same
// protocol as the central-buffer implementation (see
// internal/switches/centralbuf/combine.go): ascending single-flit tokens are
// counted instead of routed, one combined token is forwarded up the
// designated spanning tree, and the root broadcasts release tokens back
// down. Tokens are emitted straight onto output links at packet boundaries
// (when the output is unbound), so they never interleave with a worm's
// flits.

type pendingToken struct {
	port int
	worm *flit.Worm
}

func (s *Switch) expectedTokens() int {
	if s.expected == 0 {
		for _, pn := range s.node.DownPorts() {
			if !s.node.Ports[pn].Reach.Empty() {
				s.expected++
			}
		}
	}
	return s.expected
}

func (s *Switch) handleToken(port int, w *flit.Worm) {
	if switches.Ascending(s.node, port) {
		s.combineCount++
		s.stats.TokensCombined++
		if s.combineCount < s.expectedTokens() {
			return
		}
		s.combineCount = 0
		ups := s.node.UpPorts()
		if len(ups) > 0 {
			s.emitToken(ups[0], nil, w.Msg.Op)
			return
		}
		s.emitRelease(w.Msg.Op)
		return
	}
	s.emitRelease(w.Msg.Op)
}

func (s *Switch) emitRelease(op *flit.Op) {
	for _, pn := range s.node.DownPorts() {
		pt := &s.node.Ports[pn]
		if pt.Reach.Empty() {
			continue
		}
		var dest *int
		if pt.Proc >= 0 {
			dest = &pt.Proc
		}
		s.emitToken(pn, dest, op)
	}
}

func (s *Switch) emitToken(port int, dest *int, op *flit.Op) {
	msg := &flit.Message{
		ID:          s.ids.Next(),
		Class:       flit.ClassBarrier,
		HeaderFlits: 1,
		Op:          op,
	}
	dests := bitset.New(s.node.ReachAll().Cap())
	if dest != nil {
		msg.Dests = []int{*dest}
		dests.Add(*dest)
	}
	w := s.arena.New()
	*w = flit.Worm{ID: s.ids.Next(), Msg: msg, Dests: dests}
	s.pendingTok = append(s.pendingTok, pendingToken{port: port, worm: w})
	s.sim.Progress()
}

// drainTokens sends queued tokens on unbound output links.
func (s *Switch) drainTokens(now int64) {
	if len(s.pendingTok) == 0 {
		return
	}
	kept := s.pendingTok[:0]
	for _, pt := range s.pendingTok {
		out := s.ports[pt.port].Out
		if s.out[pt.port].bound == nil && out != nil && out.CanSend(now) {
			out.Send(now, flit.Ref{W: pt.worm, Idx: 0})
			s.stats.TokensEmitted++
			continue
		}
		kept = append(kept, pt)
	}
	s.pendingTok = kept
}

func (s *Switch) tokenQuiesced() bool {
	return s.combineCount == 0 && len(s.pendingTok) == 0
}
