package inputbuf

import (
	"testing"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/switches"
	"mdworm/internal/topology"
)

// The harness mirrors the central-buffer one: a single stage-0 switch of a
// one-stage tree with scripted drivers and sinks on the processor ports.
type harness struct {
	t   *testing.T
	sim *engine.Simulation
	net *topology.Network
	sw  *Switch
	in  []*engine.Link
	snk []*sink
	ids engine.IDGen
}

type driver struct {
	link *engine.Link
	worm *flit.Worm
	next int
	from int64
}

func (d *driver) Name() string   { return "driver" }
func (d *driver) Quiesced() bool { return d.worm == nil || d.next >= d.worm.Len() }
func (d *driver) Step(now int64) {
	if d.Quiesced() || now < d.from || !d.link.CanSend(now) {
		return
	}
	d.link.Send(now, flit.Ref{W: d.worm, Idx: d.next})
	d.next++
}

type sink struct {
	link    *engine.Link
	holdOff int64
	got     []flit.Ref
	tailAt  map[*flit.Message]int64
}

func (s *sink) Name() string   { return "sink" }
func (s *sink) Quiesced() bool { return true }
func (s *sink) Step(now int64) {
	if now < s.holdOff {
		return
	}
	if _, ok := s.link.Arrived(now); !ok {
		return
	}
	r := s.link.TakeArrived(now)
	s.link.ReturnCredit(now, 1)
	s.got = append(s.got, r)
	if r.Tail() {
		if s.tailAt == nil {
			s.tailAt = map[*flit.Message]int64{}
		}
		s.tailAt[r.W.Msg] = now
	}
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	net, err := topology.NewKaryTree(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: net}
	h.sim = engine.NewSimulation(10_000)
	router := &routing.Router{Net: net, ReplicateOnUpPath: true, Policy: routing.UpHash}
	node := net.Switches[0]
	ports := make([]switches.PortIO, node.NumPorts())
	for p := 0; p < 4; p++ {
		in := h.sim.NewLink("in", 1, cfg.BufFlits)
		out := h.sim.NewLink("out", 1, 8)
		ports[p] = switches.PortIO{In: in, Out: out}
		h.in = append(h.in, in)
		snk := &sink{link: out}
		h.snk = append(h.snk, snk)
		h.sim.AddComponent(snk)
	}
	h.sw = New(cfg, node, router, ports, engine.NewRNG(1), &h.ids, h.sim)
	h.sim.AddComponent(h.sw)
	return h
}

func (h *harness) inject(from int, dests []int, payload int, startAt int64) *flit.Worm {
	msg := &flit.Message{
		ID:           h.ids.Next(),
		Src:          from,
		Dests:        dests,
		PayloadFlits: payload,
		HeaderFlits:  1,
		Class:        flit.ClassUnicast,
	}
	if len(dests) > 1 {
		msg.Class = flit.ClassMulticast
	}
	w := &flit.Worm{ID: h.ids.Next(), Msg: msg, Dests: bitset.FromSlice(h.net.N, dests), GoingUp: true}
	d := &driver{link: h.in[from], worm: w, from: startAt}
	h.sim.AddComponent(d)
	return w
}

func (h *harness) run(maxCycles int64) {
	h.t.Helper()
	ok, err := h.sim.Drain(maxCycles)
	if err != nil {
		h.t.Fatalf("drain: %v", err)
	}
	if !ok {
		h.t.Fatalf("did not drain in %d cycles", maxCycles)
	}
}

func (h *harness) expectCopy(port int, msg *flit.Message) {
	h.t.Helper()
	var flits []flit.Ref
	for _, r := range h.snk[port].got {
		if r.W.Msg == msg {
			flits = append(flits, r)
		}
	}
	if len(flits) != msg.Len() {
		h.t.Fatalf("port %d got %d flits of msg %d, want %d", port, len(flits), msg.ID, msg.Len())
	}
	for i, r := range flits {
		if r.Idx != i {
			h.t.Fatalf("port %d msg %d: out of order at %d", port, msg.ID, i)
		}
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxPacketFlits = 65
	cfg.BufFlits = 80
	return cfg
}

func TestUnicastCutThrough(t *testing.T) {
	h := newHarness(t, testConfig())
	w := h.inject(0, []int{2}, 16, 0)
	h.run(1000)
	h.expectCopy(2, w.Msg)
	tail := h.snk[2].tailAt[w.Msg]
	if tail > int64(w.Len())+20 {
		t.Fatalf("cut-through tail at %d, want near %d", tail, w.Len())
	}
}

func TestMulticastReplication(t *testing.T) {
	h := newHarness(t, testConfig())
	w := h.inject(0, []int{1, 2, 3}, 32, 0)
	h.run(2000)
	for _, p := range []int{1, 2, 3} {
		h.expectCopy(p, w.Msg)
	}
	st := h.sw.Stats()
	if st.Replications != 2 {
		t.Fatalf("replications = %d", st.Replications)
	}
	if !h.sw.Quiesced() {
		t.Fatal("not quiesced")
	}
}

// TestAsynchronousReplication is the defining behavior of this
// architecture: a blocked branch must not block the others.
func TestAsynchronousReplication(t *testing.T) {
	h := newHarness(t, testConfig())
	h.snk[3].holdOff = 500
	w := h.inject(0, []int{1, 2, 3}, 32, 0)
	h.run(3000)
	fast := h.snk[1].tailAt[w.Msg]
	slow := h.snk[3].tailAt[w.Msg]
	if fast >= 500 {
		t.Fatalf("unblocked branch finished at %d", fast)
	}
	if slow < 500 {
		t.Fatalf("blocked branch finished at %d despite hold-off", slow)
	}
}

// TestHeadOfLineBlocking is the defining weakness: a packet behind a blocked
// head waits even though its own output is free.
func TestHeadOfLineBlocking(t *testing.T) {
	h := newHarness(t, testConfig())
	h.snk[2].holdOff = 400
	blocked := h.inject(0, []int{2}, 16, 0) // head, blocked destination
	free := h.inject(0, []int{1}, 16, 30)   // behind it, free destination
	h.run(3000)
	h.expectCopy(2, blocked.Msg)
	h.expectCopy(1, free.Msg)
	if got := h.snk[1].tailAt[free.Msg]; got < 400 {
		t.Fatalf("queued packet finished at %d, before the blocked head released", got)
	}
	if st := h.sw.Stats(); st.HOLBlockedSum == 0 {
		t.Fatal("no HOL blocking recorded")
	}
}

// TestNoHOLAcrossInputs: the same two packets on different inputs do not
// interfere.
func TestNoHOLAcrossInputs(t *testing.T) {
	h := newHarness(t, testConfig())
	h.snk[2].holdOff = 400
	blocked := h.inject(0, []int{2}, 16, 0)
	free := h.inject(3, []int{1}, 16, 30)
	h.run(3000)
	h.expectCopy(2, blocked.Msg)
	h.expectCopy(1, free.Msg)
	if got := h.snk[1].tailAt[free.Msg]; got >= 400 {
		t.Fatalf("independent input's packet finished at %d, blocked by another input's head", got)
	}
}

// TestOutputContentionSerializes: two unicasts to the same destination share
// the output port cleanly.
func TestOutputContentionSerializes(t *testing.T) {
	h := newHarness(t, testConfig())
	w1 := h.inject(0, []int{2}, 32, 0)
	w2 := h.inject(1, []int{2}, 32, 0)
	h.run(3000)
	h.expectCopy(2, w1.Msg)
	h.expectCopy(2, w2.Msg)
	// Flits of the two messages must not interleave.
	var current *flit.Message
	switches := 0
	for _, r := range h.snk[2].got {
		if r.W.Msg != current {
			current = r.W.Msg
			switches++
		}
	}
	if switches != 2 {
		t.Fatalf("messages interleaved on the wire (%d segments)", switches)
	}
	if st := h.sw.Stats(); st.GrantWaitSum == 0 {
		t.Fatal("no grant wait recorded despite output contention")
	}
}

func TestManyWormsConservation(t *testing.T) {
	h := newHarness(t, testConfig())
	total := 0
	rng := engine.NewRNG(5)
	for i := 0; i < 12; i++ {
		from := i % 4
		var dests []int
		if i%3 == 0 {
			for d := 0; d < 4; d++ {
				if d != from {
					dests = append(dests, d)
				}
			}
		} else {
			d := (from + 1 + rng.Intn(3)) % 4
			if d == from {
				d = (from + 1) % 4
			}
			dests = []int{d}
		}
		w := h.inject(from, dests, 16+rng.Intn(32), int64(i*3))
		total += w.Len() * len(dests)
	}
	h.run(20_000)
	got := 0
	for _, s := range h.snk {
		got += len(s.got)
	}
	if got != total {
		t.Fatalf("delivered %d flits, want %d", got, total)
	}
	if !h.sw.Quiesced() {
		t.Fatal("switch holds state after drain")
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(4); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.BufFlits = bad.MaxPacketFlits - 1
	if err := bad.Validate(4); err == nil {
		t.Error("undersized buffer accepted")
	}
	bad = good
	bad.RouteDelay = -1
	if err := bad.Validate(4); err == nil {
		t.Error("negative route delay accepted")
	}
	bad = good
	bad.BufFlits = 0
	if err := bad.Validate(0); err == nil {
		t.Error("zero buffer accepted")
	}
}

// TestBufferOccupancyBounded: stats must show the buffer never exceeded its
// capacity (the credit protocol at work).
func TestBufferOccupancyBounded(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, cfg)
	h.snk[1].holdOff = 300
	h.inject(0, []int{1}, 60, 0)
	h.inject(0, []int{1}, 60, 5)
	h.run(5000)
	if st := h.sw.Stats(); st.MaxBufOccupancy > cfg.BufFlits {
		t.Fatalf("occupancy %d exceeded capacity %d", st.MaxBufOccupancy, cfg.BufFlits)
	}
}

// TestSyncReplicationLockStep: under synchronous replication, a blocked
// branch holds back the others — the defining difference from asynchronous
// replication (compare TestAsynchronousReplication).
func TestSyncReplicationLockStep(t *testing.T) {
	cfg := testConfig()
	cfg.SyncReplication = true
	h := newHarness(t, cfg)
	h.snk[3].holdOff = 500
	w := h.inject(0, []int{1, 2, 3}, 32, 0)
	h.run(5000)
	for _, p := range []int{1, 2, 3} {
		h.expectCopy(p, w.Msg)
	}
	// The unblocked branch cannot finish much before the blocked one: the
	// blocked sink's link absorbs only its credit window before stalling
	// everything.
	fast := h.snk[1].tailAt[w.Msg]
	if fast < 400 {
		t.Fatalf("lock-step branch finished at %d despite a blocked sibling", fast)
	}
}

// TestSyncReplicationUnicastUnaffected: single-branch traffic behaves
// identically under either replication mode.
func TestSyncReplicationUnicastUnaffected(t *testing.T) {
	for _, sync := range []bool{false, true} {
		cfg := testConfig()
		cfg.SyncReplication = sync
		h := newHarness(t, cfg)
		w := h.inject(0, []int{2}, 16, 0)
		h.run(1000)
		h.expectCopy(2, w.Msg)
	}
}

// TestBarrierCombiningSingleSwitchIB mirrors the central-buffer combining
// test on the input-buffered switch.
func TestBarrierCombiningSingleSwitchIB(t *testing.T) {
	h := newHarness(t, testConfig())
	op := flit.NewOp(99, flit.ClassBarrier, 0, 4, 0)
	for p := 0; p < 4; p++ {
		msg := &flit.Message{ID: h.ids.Next(), Src: p, Dests: []int{p},
			Class: flit.ClassBarrier, HeaderFlits: 1, Op: op}
		w := &flit.Worm{ID: h.ids.Next(), Msg: msg, Dests: bitset.FromSlice(4, []int{p})}
		h.sim.AddComponent(&driver{link: h.in[p], worm: w, from: int64(p * 5)})
	}
	h.run(2000)
	st := h.sw.Stats()
	if st.TokensCombined != 4 || st.TokensEmitted != 4 {
		t.Fatalf("combined=%d emitted=%d, want 4/4", st.TokensCombined, st.TokensEmitted)
	}
	for p := 0; p < 4; p++ {
		got := 0
		for _, r := range h.snk[p].got {
			if r.W.Msg.Class == flit.ClassBarrier {
				got++
			}
		}
		if got != 1 {
			t.Fatalf("host %d received %d release tokens", p, got)
		}
	}
	if !h.sw.Quiesced() {
		t.Fatal("combining state not cleared")
	}
}
