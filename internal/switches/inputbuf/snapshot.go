package inputbuf

import (
	"mdworm/internal/ckpt"
	"mdworm/internal/switches"
)

// Checkpoint support. The switch's mutable state is the per-input worm
// queues and branch sets, the output bindings (aliases into those branch
// sets, encoded as (input, branch) pairs), barrier combining, counters, and
// the per-switch RNG position.

// CollectState adds every worm the switch holds to the checkpoint graph.
func (s *Switch) CollectState(g *ckpt.Graph) {
	for i := range s.in {
		in := &s.in[i]
		for k := range in.queue {
			g.AddWorm(in.queue[k].w)
		}
		for _, b := range in.branches {
			g.AddWorm(b.child)
		}
	}
	for _, pt := range s.pendingTok {
		g.AddWorm(pt.worm)
	}
}

// EncodeState writes the switch's mutable state.
func (s *Switch) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.Int(len(s.in))
	for i := range s.in {
		in := &s.in[i]
		e.Int(len(in.queue))
		for k := range in.queue {
			e.U64(g.WormID(in.queue[k].w))
			e.Int(in.queue[k].got)
		}
		e.Int(in.occupancy)
		e.U8(uint8(in.mode))
		e.Int(in.decodeLeft)
		e.Int(len(in.branches))
		for _, b := range in.branches {
			e.Int(b.out)
			e.U64(g.WormID(b.child))
			e.Int(b.sent)
			e.Bool(b.granted)
			e.Bool(b.done)
			e.I64(b.reqAt)
		}
		e.Int(in.minSent)
		e.I64(in.movedAt)
	}

	e.Int(len(s.out))
	for o := range s.out {
		st := &s.out[o]
		if st.bound == nil {
			e.Int(-1)
			e.Int(-1)
		} else {
			e.Int(st.bound.in)
			bi := -1
			for k, b := range s.in[st.bound.in].branches {
				if b == st.bound {
					bi = k
					break
				}
			}
			if bi < 0 {
				panic("inputbuf: bound branch not in its input's branch list")
			}
			e.Int(bi)
		}
		e.Int(st.arb.Last())
	}

	e.Int(s.combineCount)
	e.Int(s.expected)
	e.Int(len(s.pendingTok))
	for _, pt := range s.pendingTok {
		e.Int(pt.port)
		e.U64(g.WormID(pt.worm))
	}

	switches.EncodeStats(e, &s.stats.Stats)
	e.I64(s.stats.GrantWaitSum)
	e.I64(s.stats.HOLBlockedSum)
	e.Int(s.stats.MaxBufOccupancy)
	e.I64(s.stats.TokensCombined)
	e.I64(s.stats.TokensEmitted)

	e.U64(s.rng.State())
}

// DecodeState restores the switch over a freshly constructed twin.
func (s *Switch) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	nin := d.Count(8)
	if d.Err() != nil {
		return
	}
	if nin != len(s.in) {
		d.Fail("%s: %d inputs, checkpoint has %d", s.Name(), len(s.in), nin)
		return
	}
	for i := range s.in {
		in := &s.in[i]
		nq := d.Count(16)
		if d.Err() != nil {
			return
		}
		in.queue = nil
		for k := 0; k < nq; k++ {
			r := wormRecv{w: g.WormAt(d, d.U64()), got: d.Int()}
			if d.Err() != nil {
				return
			}
			if r.w == nil || r.got < 1 || r.got > r.w.Len() {
				d.Fail("%s: input %d queued worm %d inconsistent", s.Name(), i, k)
				return
			}
			in.queue = append(in.queue, r)
		}
		in.occupancy = d.Int()
		in.mode = inputMode(d.U8())
		in.decodeLeft = d.Int()
		nb := d.Count(24)
		if d.Err() != nil {
			return
		}
		in.branches = nil
		for k := 0; k < nb; k++ {
			b := &branch{in: i, out: d.Int(), child: g.WormAt(d, d.U64()),
				sent: d.Int(), granted: d.Bool(), done: d.Bool(), reqAt: d.I64()}
			if d.Err() != nil {
				return
			}
			if b.child == nil || b.out < 0 || b.out >= len(s.out) ||
				b.sent < 0 || b.sent > b.child.Len() {
				d.Fail("%s: input %d branch %d inconsistent", s.Name(), i, k)
				return
			}
			if !b.granted && !b.done {
				s.reqBits[b.out] |= 1 << uint(i)
			}
			in.branches = append(in.branches, b)
		}
		in.minSent = d.Int()
		in.movedAt = d.I64()
		if d.Err() != nil {
			return
		}
		if in.occupancy < 0 || in.occupancy > s.cfg.BufFlits || in.mode > modeSink {
			d.Fail("%s: input %d occupancy/mode inconsistent", s.Name(), i)
			return
		}
		// Every non-idle mode dereferences the head of the queue.
		if in.mode != modeIdle && len(in.queue) == 0 {
			d.Fail("%s: input %d mode %d with empty queue", s.Name(), i, in.mode)
			return
		}
	}

	nout := d.Count(8)
	if d.Err() != nil {
		return
	}
	if nout != len(s.out) {
		d.Fail("%s: %d outputs, checkpoint has %d", s.Name(), len(s.out), nout)
		return
	}
	for o := range s.out {
		st := &s.out[o]
		bin := d.Int()
		bidx := d.Int()
		last := d.Int()
		if d.Err() != nil {
			return
		}
		if bin == -1 && bidx == -1 {
			st.bound = nil
		} else if bin >= 0 && bin < len(s.in) && bidx >= 0 && bidx < len(s.in[bin].branches) {
			st.bound = s.in[bin].branches[bidx]
		} else {
			d.Fail("%s: output %d bound ref (%d,%d) out of range", s.Name(), o, bin, bidx)
			return
		}
		if last < 0 || last >= st.arb.N() {
			d.Fail("%s: output %d arbiter pointer %d out of range", s.Name(), o, last)
			return
		}
		st.arb.SetLast(last)
	}

	s.combineCount = d.Int()
	s.expected = d.Int()
	ntok := d.Count(16)
	if d.Err() != nil {
		return
	}
	s.pendingTok = nil
	for k := 0; k < ntok; k++ {
		pt := pendingToken{port: d.Int(), worm: g.WormAt(d, d.U64())}
		if d.Err() != nil {
			return
		}
		if pt.worm == nil || pt.port < 0 || pt.port >= len(s.out) {
			d.Fail("%s: pending token %d inconsistent", s.Name(), k)
			return
		}
		s.pendingTok = append(s.pendingTok, pt)
	}

	switches.DecodeStats(d, &s.stats.Stats)
	s.stats.GrantWaitSum = d.I64()
	s.stats.HOLBlockedSum = d.I64()
	s.stats.MaxBufOccupancy = d.Int()
	s.stats.TokensCombined = d.I64()
	s.stats.TokensEmitted = d.I64()

	s.rng.SetState(d.U64())
}
