// Package inputbuf implements the input-buffer-based switch architecture of
// the paper: one FIFO buffer per input port, each large enough to hold the
// largest packet in the system, with asynchronous replication of
// multidestination worms performed at the input buffer. The head worm of an
// input requests all the output ports of its branch set; flits are forwarded
// to whichever outputs the worm has acquired so far, each branch advancing
// at its own pace (blocked branches do not block the others). A flit's
// buffer slot is freed — and its credit returned upstream — once every
// branch has forwarded it.
//
// Because an input buffer can hold an entire packet, an accepted
// multidestination worm can always be completely buffered, satisfying the
// paper's deadlock-freedom requirement. The price relative to the central
// buffer is static partitioning of buffer space and head-of-line blocking:
// everything behind the head worm of an input waits, even if its own output
// is free.
package inputbuf

import (
	"fmt"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/switches"
	"mdworm/internal/topology"
)

// Config holds the microarchitectural parameters of the switch.
type Config struct {
	// BufFlits is the capacity of each input buffer; it is also the
	// credit count granted to the upstream link and must be at least
	// MaxPacketFlits so a worm can always be fully buffered.
	BufFlits int
	// RouteDelay is the decode latency in cycles after a complete header
	// reaches the head of an input buffer.
	RouteDelay int
	// MaxPacketFlits bounds packet size.
	MaxPacketFlits int
	// SyncReplication switches multidestination forwarding from the
	// paper's asynchronous replication to the lock-step alternative it
	// argues against: a flit is forwarded only when *every* branch has
	// acquired its output and can move that flit in the same cycle, so a
	// blocked branch stalls all the others. Ablation knob; default off.
	// (With full-packet input buffers this costs latency, not deadlock.)
	SyncReplication bool
}

// DefaultConfig returns defaults matching the paper's requirement that each
// input buffer holds the largest packet, with a little slack.
func DefaultConfig() Config {
	return Config{BufFlits: 512 + 64, RouteDelay: 4, MaxPacketFlits: 512}
}

// Validate checks internal consistency.
func (c Config) Validate(maxHeaderFlits int) error {
	switch {
	case c.BufFlits < 1:
		return fmt.Errorf("inputbuf: buffer must hold >= 1 flit")
	case c.RouteDelay < 0:
		return fmt.Errorf("inputbuf: negative route delay")
	case c.BufFlits < c.MaxPacketFlits:
		return fmt.Errorf("inputbuf: buffer (%d flits) smaller than max packet (%d flits); "+
			"multidestination worms could not be fully buffered", c.BufFlits, c.MaxPacketFlits)
	case maxHeaderFlits > c.BufFlits:
		return fmt.Errorf("inputbuf: header (%d flits) exceeds input buffer (%d flits)", maxHeaderFlits, c.BufFlits)
	}
	return nil
}

// Stats exposes per-switch counters.
type Stats struct {
	switches.Stats
	GrantWaitSum    int64 // cycles branches spent requesting an output
	HOLBlockedSum   int64 // cycles an active input head moved no flit (grant, credit, or data stall)
	MaxBufOccupancy int
	TokensCombined  int64 // barrier tokens absorbed by the combining logic
	TokensEmitted   int64 // barrier tokens generated (combined-up or release)
}

type inputMode uint8

const (
	modeIdle inputMode = iota
	modeHeader
	modeDecode
	modeActive
	// modeSink consumes a head worm whose every branch died (fault
	// degradation): flits are freed as they arrive so upstream drains.
	modeSink
)

type wormRecv struct {
	w   *flit.Worm
	got int // flits received so far
}

type branch struct {
	in      int // owning input port
	out     int
	child   *flit.Worm
	sent    int
	granted bool
	done    bool
	reqAt   int64
}

type inputState struct {
	queue      []wormRecv // worms in the buffer, arrival order; [0] is head
	occupancy  int        // buffered flits not yet freed
	mode       inputMode
	decodeLeft int
	branches   []*branch
	minSent    int
	movedAt    int64 // last cycle any branch of this input forwarded a flit
}

type outputState struct {
	bound *branch
	arb   *switches.RoundRobin
}

// Switch is one input-buffered switch instance.
type Switch struct {
	cfg    Config
	node   *topology.Switch
	router *routing.Router
	ports  []switches.PortIO
	rng    *engine.RNG
	ids    *engine.IDGen
	sim    *engine.Simulation
	arena  flit.WormArena

	in  []inputState
	out []outputState

	// reqBits[o] has bit i set while input i holds a requestable (created,
	// ungranted, not yet done) branch for output o, so arbitration skips
	// outputs and inputs with nothing to ask in O(1) instead of rescanning
	// every branch list every cycle.
	reqBits []uint64

	// Barrier combining state (see combine.go).
	combineCount int
	expected     int
	pendingTok   []pendingToken

	stats Stats
}

// New creates a switch bound to its topology node and port links.
func New(cfg Config, node *topology.Switch, router *routing.Router, ports []switches.PortIO,
	rng *engine.RNG, ids *engine.IDGen, sim *engine.Simulation) *Switch {

	if len(ports) != node.NumPorts() {
		panic("inputbuf: port count mismatch")
	}
	if len(ports) > 64 {
		panic("inputbuf: request bitmap supports at most 64 ports")
	}
	s := &Switch{
		cfg:     cfg,
		node:    node,
		router:  router,
		ports:   ports,
		rng:     rng,
		ids:     ids,
		sim:     sim,
		in:      make([]inputState, len(ports)),
		out:     make([]outputState, len(ports)),
		reqBits: make([]uint64, len(ports)),
	}
	for o := range s.out {
		s.out[o].arb = switches.NewRoundRobin(len(ports))
	}
	return s
}

// Name identifies the switch in diagnostics.
func (s *Switch) Name() string {
	return fmt.Sprintf("ib-sw%d(s%d,%d)", s.node.ID, s.node.Stage, s.node.Pos)
}

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats { return s.stats }

// Occupancy returns an instantaneous snapshot of the buffered state for the
// observability probe.
func (s *Switch) Occupancy() switches.Occupancy {
	var o switches.Occupancy
	for i := range s.in {
		n := s.in[i].occupancy
		o.InputFlits += n
		if n > o.MaxInputQ {
			o.MaxInputQ = n
		}
	}
	return o
}

// InputCredits returns the credit count to grant on links feeding this
// switch (the input buffer capacity).
func (s *Switch) InputCredits() int { return s.cfg.BufFlits }

// Quiesced reports whether the switch holds no flits or packet state.
func (s *Switch) Quiesced() bool {
	if !s.tokenQuiesced() {
		return false
	}
	for i := range s.in {
		if len(s.in[i].queue) != 0 || s.in[i].mode != modeIdle {
			return false
		}
	}
	for o := range s.out {
		if s.out[o].bound != nil {
			return false
		}
	}
	return true
}

// Step advances the switch one cycle: bound branches forward flits,
// unbound outputs arbitrate among requesting branches, input heads decode,
// and new arrivals are accepted.
func (s *Switch) Step(now int64) {
	s.serveOutputs(now)
	s.drainTokens(now)
	s.dropDeadBranches(now)
	s.arbitrate(now)
	s.stepInputs(now)
	s.acceptArrivals(now)
}

// dropDeadBranches abandons branches whose output link died before they
// began sending; a branch that already sent its head finishes normally
// (failure lands at worm boundaries, so flit conservation holds).
func (s *Switch) dropDeadBranches(now int64) {
	for i := range s.in {
		in := &s.in[i]
		if in.mode != modeActive {
			continue
		}
		for _, b := range in.branches {
			if b.done || b.sent > 0 {
				continue
			}
			out := s.ports[b.out].Out
			if out == nil || !out.Dead() {
				continue
			}
			s.reportDrop(now, b.child, b.child.Dests)
			b.done = true
			b.sent = in.queue[0].w.Len()
			if b.granted && s.out[b.out].bound == b {
				s.out[b.out].bound = nil
			}
			if !b.granted {
				s.reqBits[b.out] &^= 1 << uint(i)
			}
		}
	}
}

// reportDrop accounts destinations abandoned because of an injected fault.
func (s *Switch) reportDrop(now int64, w *flit.Worm, dropped bitset.Set) {
	n := flit.DropCost(w, dropped)
	if n == 0 {
		return
	}
	s.stats.WormsDropped++
	s.stats.DestsDropped += int64(dropped.Count())
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceDrop, Actor: s.Name(),
			Msg: w.Msg.ID, Worm: w.ID,
			Detail: fmt.Sprintf("dests=%v cost=%d", dropped.Members(), n)})
	}
	if s.router.OnDrop != nil {
		s.router.OnDrop(w.Msg, n, now)
	}
	s.sim.Progress()
}

// serveOutputs forwards one flit per bound output, directly onto the link.
// Under synchronous replication, a multidestination head moves a flit only
// when every branch can move it in lock-step.
func (s *Switch) serveOutputs(now int64) {
	if s.cfg.SyncReplication {
		s.serveOutputsSync(now)
		s.finishHeads(now)
		return
	}
	for o := range s.out {
		st := &s.out[o]
		b := st.bound
		if b == nil {
			continue
		}
		in := &s.in[b.in]
		head := &in.queue[0]
		if b.sent >= head.got || s.ports[o].Out == nil || !s.ports[o].Out.CanSend(now) {
			continue
		}
		s.ports[o].Out.Send(now, flit.Ref{W: b.child, Idx: b.sent})
		b.sent++
		in.movedAt = now
		s.stats.FlitsOut++
		if b.sent == head.w.Len() {
			b.done = true
			st.bound = nil
		}
		s.advanceFreeing(b.in, now)
	}
	s.finishHeads(now)
}

// serveOutputsSync forwards flits with all branches of a head advancing in
// lock-step (the feedback-coupled replication the paper rejects).
func (s *Switch) serveOutputsSync(now int64) {
	for i := range s.in {
		in := &s.in[i]
		if in.mode != modeActive || len(in.branches) == 0 {
			continue
		}
		head := &in.queue[0]
		ready := true
		for _, b := range in.branches {
			if b.done {
				continue
			}
			if !b.granted || b.sent >= head.got ||
				s.ports[b.out].Out == nil || !s.ports[b.out].Out.CanSend(now) {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		for _, b := range in.branches {
			if b.done {
				continue
			}
			s.ports[b.out].Out.Send(now, flit.Ref{W: b.child, Idx: b.sent})
			b.sent++
			s.stats.FlitsOut++
			if b.sent == head.w.Len() {
				b.done = true
				s.out[b.out].bound = nil
			}
		}
		in.movedAt = now
		s.advanceFreeing(i, now)
	}
}

// advanceFreeing returns credits for flits every branch has forwarded. The
// floor is clamped to the flits actually received: a branch dropped by a
// fault has sent == Len() and must not free (or return credits for) flits
// still on their way in.
func (s *Switch) advanceFreeing(i int, now int64) {
	in := &s.in[i]
	m := in.queue[0].got
	for _, b := range in.branches {
		if b.sent < m {
			m = b.sent
		}
	}
	if m > in.minSent {
		delta := m - in.minSent
		in.minSent = m
		in.occupancy -= delta
		if in.occupancy < 0 {
			s.sim.Invariants().Violate(now, "ib-occupancy",
				"%s: input %d occupancy %d after freeing %d flits", s.Name(), i, in.occupancy, delta)
			in.occupancy = 0
		}
		s.ports[i].In.ReturnCredit(now, delta)
	}
}

// finishHeads pops head worms whose branches are all done.
func (s *Switch) finishHeads(now int64) {
	for i := range s.in {
		in := &s.in[i]
		if in.mode != modeActive || len(in.branches) == 0 {
			continue
		}
		alldone := true
		for _, b := range in.branches {
			if !b.done {
				alldone = false
				break
			}
		}
		if !alldone {
			continue
		}
		head := &in.queue[0]
		if head.got < head.w.Len() {
			// Dropped branches outran arrival (fault path): keep freeing
			// flits as they trickle in and pop once the tail arrives.
			s.advanceFreeing(i, now)
			continue
		}
		s.advanceFreeing(i, now)
		if in.minSent != head.w.Len() {
			s.sim.Invariants().Violate(now, "ib-occupancy",
				"%s: popping head with %d/%d flits freed", s.Name(), in.minSent, head.w.Len())
			if delta := head.w.Len() - in.minSent; delta > 0 {
				in.occupancy -= delta
				if in.occupancy < 0 {
					in.occupancy = 0
				}
				s.ports[i].In.ReturnCredit(now, delta)
			}
		}
		in.queue = in.queue[1:]
		in.branches = nil
		in.minSent = 0
		in.mode = modeIdle
		s.sim.Progress()
	}
}

// arbitrate grants unbound outputs to requesting head branches, round-robin
// across inputs.
func (s *Switch) arbitrate(now int64) {
	for o := range s.out {
		st := &s.out[o]
		if st.bound != nil || s.reqBits[o] == 0 {
			continue
		}
		req := s.reqBits[o]
		picked := st.arb.Pick(func(i int) bool {
			return req&(1<<uint(i)) != 0
		})
		if picked < 0 {
			continue
		}
		in := &s.in[picked]
		for _, b := range in.branches {
			if b.out == o && !b.granted && !b.done {
				b.granted = true
				s.reqBits[o] &^= 1 << uint(picked)
				st.bound = b
				s.stats.GrantWaitSum += now - b.reqAt
				if s.sim.Tracing() {
					s.sim.Emit(engine.TraceEvent{Kind: engine.TraceGrant, Actor: s.Name(),
						Msg: b.child.Msg.ID, Worm: b.child.ID,
						Detail: fmt.Sprintf("in=%d out=%d waited=%d", picked, o, now-b.reqAt)})
				}
				s.sim.Progress()
				break
			}
		}
	}
}

func (s *Switch) stepInputs(now int64) {
	for i := range s.in {
		in := &s.in[i]
		switch in.mode {
		case modeIdle:
			if len(in.queue) == 0 {
				continue
			}
			if head := &in.queue[0]; head.w.Msg.Class == flit.ClassBarrier {
				// Barrier tokens are combined, never routed. The token
				// is one flit; it is fully present once queued.
				if head.got < head.w.Len() {
					continue
				}
				w := head.w
				in.queue = in.queue[1:]
				in.occupancy--
				s.ports[i].In.ReturnCredit(now, 1)
				s.handleToken(i, w)
				continue
			}
			in.mode = modeHeader
			fallthrough
		case modeHeader:
			head := &in.queue[0]
			need := min(head.w.HeaderFlits(), head.w.Len())
			if head.got < need {
				continue
			}
			in.decodeLeft = s.cfg.RouteDelay
			in.mode = modeDecode
			fallthrough
		case modeDecode:
			if in.decodeLeft > 0 {
				in.decodeLeft--
				s.sim.Progress()
				continue
			}
			s.decode(i, now)
		case modeActive:
			// Branches are driven from serveOutputs/arbitrate; count
			// cycles the head could not move a single flit (whether
			// blocked on grants, downstream credits, or missing data).
			if in.movedAt != now {
				s.stats.HOLBlockedSum++
			}
		case modeSink:
			s.sinkHead(i, now)
		}
	}
}

func (s *Switch) decode(i int, now int64) {
	in := &s.in[i]
	head := &in.queue[0]
	ascending := switches.Ascending(s.node, i)
	free := func(port int) bool { return s.out[port].bound == nil }
	// A nil dead predicate keeps healthy fabrics on the allocation-free
	// routing fast path; avoidance engages only once a link has failed.
	var dead func(port int) bool
	if switches.AnyDeadOut(s.ports) {
		dead = func(port int) bool {
			out := s.ports[port].Out
			return out != nil && out.Dead()
		}
	}
	plans, dropped, err := switches.PlanBranches(s.router, s.node, head.w, ascending, free, dead, s.rng, s.ids, &s.arena)
	if err != nil {
		panic(fmt.Sprintf("%s: input %d: %v", s.Name(), i, err))
	}
	s.stats.Decodes++
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceDecode, Actor: s.Name(),
			Msg: head.w.Msg.ID, Worm: head.w.ID,
			Detail: fmt.Sprintf("in=%d branches=%d", i, len(plans))})
	}
	if !dropped.Empty() {
		s.reportDrop(now, head.w, dropped)
	}
	if len(plans) == 0 {
		// Every branch died: swallow the worm so upstream drains.
		in.mode = modeSink
		s.sinkHead(i, now)
		return
	}
	s.stats.Replications += int64(len(plans) - 1)
	in.branches = make([]*branch, len(plans))
	for bi, p := range plans {
		in.branches[bi] = &branch{in: i, out: p.Port, child: p.Child, reqAt: now}
		s.reqBits[p.Port] |= 1 << uint(i)
	}
	in.minSent = 0
	in.mode = modeActive
}

// sinkHead frees the head worm's flits as they arrive and pops it at the
// tail, for worms whose every branch died at decode.
func (s *Switch) sinkHead(i int, now int64) {
	in := &s.in[i]
	head := &in.queue[0]
	if head.got > in.minSent {
		delta := head.got - in.minSent
		in.minSent = head.got
		in.occupancy -= delta
		if in.occupancy < 0 {
			s.sim.Invariants().Violate(now, "ib-occupancy",
				"%s: input %d occupancy %d while sinking", s.Name(), i, in.occupancy)
			in.occupancy = 0
		}
		s.ports[i].In.ReturnCredit(now, delta)
	}
	if head.got == head.w.Len() {
		in.queue = in.queue[1:]
		in.minSent = 0
		in.mode = modeIdle
		s.sim.Progress()
	}
}

func (s *Switch) acceptArrivals(now int64) {
	for i := range s.in {
		if s.ports[i].In == nil {
			continue
		}
		if _, ok := s.ports[i].In.Arrived(now); ok {
			r := s.ports[i].In.TakeArrived(now)
			in := &s.in[i]
			if in.occupancy >= s.cfg.BufFlits {
				panic(fmt.Sprintf("%s: input %d buffer overflow (credit protocol violated)", s.Name(), i))
			}
			if n := len(in.queue); n > 0 && in.queue[n-1].w == r.W {
				if r.Idx != in.queue[n-1].got {
					panic(fmt.Sprintf("%s: input %d non-contiguous flit %v", s.Name(), i, r))
				}
				in.queue[n-1].got++
			} else {
				if r.Idx != 0 {
					panic(fmt.Sprintf("%s: input %d new worm starting at flit %d", s.Name(), i, r.Idx))
				}
				in.queue = append(in.queue, wormRecv{w: r.W, got: 1})
			}
			in.occupancy++
			if in.occupancy > s.stats.MaxBufOccupancy {
				s.stats.MaxBufOccupancy = in.occupancy
			}
			s.stats.FlitsIn++
		}
	}
}
