package switches

import (
	"fmt"

	"mdworm/internal/flit"
)

// FIFO is a flit queue that exploits worm contiguity: because a link carries
// the flits of one worm back to back, the queue stores (worm, first, count)
// segments instead of individual flits, keeping per-cycle work constant.
type FIFO struct {
	segs []fseg
	head int // index of the front segment; popped segments are reused
	size int
}

type fseg struct {
	w     *flit.Worm
	first int
	n     int
}

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.size }

// Empty reports whether the queue holds no flits.
func (f *FIFO) Empty() bool { return f.size == 0 }

// Push appends a flit. Flits of a worm must arrive contiguously and in
// index order; Push panics otherwise (a model invariant violation).
func (f *FIFO) Push(r flit.Ref) {
	if n := len(f.segs); n > f.head && f.segs[n-1].w == r.W {
		seg := &f.segs[n-1]
		if r.Idx != seg.first+seg.n {
			panic(fmt.Sprintf("switches: non-contiguous flit %v (expected idx %d)", r, seg.first+seg.n))
		}
		seg.n++
	} else {
		if f.head > 0 && len(f.segs) == cap(f.segs) {
			// Reclaim the popped prefix instead of growing.
			n := copy(f.segs, f.segs[f.head:])
			f.segs = f.segs[:n]
			f.head = 0
		}
		f.segs = append(f.segs, fseg{w: r.W, first: r.Idx, n: 1})
	}
	f.size++
}

// HeadWorm returns the worm whose flit is at the front, or nil if empty.
func (f *FIFO) HeadWorm() *flit.Worm {
	if f.size == 0 {
		return nil
	}
	return f.segs[f.head].w
}

// HeadAvail returns how many flits of the front worm are buffered.
func (f *FIFO) HeadAvail() int {
	if f.size == 0 {
		return 0
	}
	return f.segs[f.head].n
}

// HeadIdx returns the flit index at the front of the queue.
func (f *FIFO) HeadIdx() int {
	if f.size == 0 {
		panic("switches: HeadIdx on empty FIFO")
	}
	return f.segs[f.head].first
}

// Pop removes and returns the front flit.
func (f *FIFO) Pop() flit.Ref {
	if f.size == 0 {
		panic("switches: Pop on empty FIFO")
	}
	seg := &f.segs[f.head]
	r := flit.Ref{W: seg.w, Idx: seg.first}
	seg.first++
	seg.n--
	if seg.n == 0 {
		seg.w = nil // release the worm pointer for GC
		f.head++
		if f.head == len(f.segs) {
			f.segs = f.segs[:0]
			f.head = 0
		}
	}
	f.size--
	return r
}
