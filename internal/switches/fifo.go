package switches

import (
	"fmt"

	"mdworm/internal/flit"
)

// FIFO is a flit queue that exploits worm contiguity: because a link carries
// the flits of one worm back to back, the queue stores (worm, first, count)
// segments instead of individual flits, keeping per-cycle work constant.
type FIFO struct {
	segs []fseg
	size int
}

type fseg struct {
	w     *flit.Worm
	first int
	n     int
}

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.size }

// Empty reports whether the queue holds no flits.
func (f *FIFO) Empty() bool { return f.size == 0 }

// Push appends a flit. Flits of a worm must arrive contiguously and in
// index order; Push panics otherwise (a model invariant violation).
func (f *FIFO) Push(r flit.Ref) {
	if n := len(f.segs); n > 0 && f.segs[n-1].w == r.W {
		seg := &f.segs[n-1]
		if r.Idx != seg.first+seg.n {
			panic(fmt.Sprintf("switches: non-contiguous flit %v (expected idx %d)", r, seg.first+seg.n))
		}
		seg.n++
	} else {
		f.segs = append(f.segs, fseg{w: r.W, first: r.Idx, n: 1})
	}
	f.size++
}

// HeadWorm returns the worm whose flit is at the front, or nil if empty.
func (f *FIFO) HeadWorm() *flit.Worm {
	if f.size == 0 {
		return nil
	}
	return f.segs[0].w
}

// HeadAvail returns how many flits of the front worm are buffered.
func (f *FIFO) HeadAvail() int {
	if f.size == 0 {
		return 0
	}
	return f.segs[0].n
}

// HeadIdx returns the flit index at the front of the queue.
func (f *FIFO) HeadIdx() int {
	if f.size == 0 {
		panic("switches: HeadIdx on empty FIFO")
	}
	return f.segs[0].first
}

// Pop removes and returns the front flit.
func (f *FIFO) Pop() flit.Ref {
	if f.size == 0 {
		panic("switches: Pop on empty FIFO")
	}
	seg := &f.segs[0]
	r := flit.Ref{W: seg.w, Idx: seg.first}
	seg.first++
	seg.n--
	if seg.n == 0 {
		f.segs = f.segs[1:]
	}
	f.size--
	return r
}
