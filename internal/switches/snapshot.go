package switches

import (
	"mdworm/internal/ckpt"
	"mdworm/internal/flit"
)

// CollectState adds every worm buffered in the FIFO to the checkpoint graph.
func (f *FIFO) CollectState(g *ckpt.Graph) {
	for i := f.head; i < len(f.segs); i++ {
		g.AddWorm(f.segs[i].w)
	}
}

// EncodeState writes the FIFO as its (worm, first, count) segments.
func (f *FIFO) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.Int(len(f.segs) - f.head)
	for i := f.head; i < len(f.segs); i++ {
		s := &f.segs[i]
		e.U64(g.WormID(s.w))
		e.Int(s.first)
		e.Int(s.n)
	}
}

// DecodeState restores the FIFO contents, validating segment ranges against
// the worms they reference.
func (f *FIFO) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	f.segs = nil
	f.head = 0
	f.size = 0
	n := d.Count(24)
	for i := 0; i < n && d.Err() == nil; i++ {
		w := g.WormAt(d, d.U64())
		first := d.Int()
		cnt := d.Int()
		if d.Err() != nil {
			return
		}
		if w == nil || cnt < 1 || first < 0 || first+cnt > w.Len() {
			d.Fail("fifo: segment %d/%d out of range", i, n)
			return
		}
		f.segs = append(f.segs, fseg{w: w, first: first, n: cnt})
		f.size += cnt
	}
}

// Last returns the arbiter's pointer (index of the previous grant).
func (rr *RoundRobin) Last() int { return rr.last }

// SetLast repositions the arbiter pointer; out-of-range values panic, so
// checkpoint decoders must validate first (N returns the valid bound).
func (rr *RoundRobin) SetLast(last int) {
	if last < 0 || last >= rr.n {
		panic("switches: RoundRobin pointer out of range")
	}
	rr.last = last
}

// N returns the number of requesters the arbiter serves.
func (rr *RoundRobin) N() int { return rr.n }

// EncodeStats writes the common switch counters.
func EncodeStats(e *ckpt.Enc, s *Stats) {
	e.I64(s.FlitsIn)
	e.I64(s.FlitsOut)
	e.I64(s.Decodes)
	e.I64(s.Replications)
	e.I64(s.WormsDropped)
	e.I64(s.DestsDropped)
}

// DecodeStats restores the common switch counters.
func DecodeStats(d *ckpt.Dec, s *Stats) {
	s.FlitsIn = d.I64()
	s.FlitsOut = d.I64()
	s.Decodes = d.I64()
	s.Replications = d.I64()
	s.WormsDropped = d.I64()
	s.DestsDropped = d.I64()
}

// EncodeRef writes one flit reference.
func EncodeRef(e *ckpt.Enc, g *ckpt.Graph, r flit.Ref) {
	e.U64(g.WormID(r.W))
	e.Int(r.Idx)
}

// DecodeRef reads one flit reference, validating the index range.
func DecodeRef(d *ckpt.Dec, g *ckpt.Graph) flit.Ref {
	w := g.WormAt(d, d.U64())
	idx := d.Int()
	if d.Err() != nil {
		return flit.Ref{}
	}
	if w == nil || idx < 0 || idx >= w.Len() {
		d.Fail("flit ref out of range")
		return flit.Ref{}
	}
	return flit.Ref{W: w, Idx: idx}
}
