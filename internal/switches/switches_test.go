package switches

import (
	"testing"
	"testing/quick"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

func mkWorm(id uint64, n, header, payload int, dests []int) *flit.Worm {
	msg := &flit.Message{ID: id, HeaderFlits: header, PayloadFlits: payload}
	return &flit.Worm{ID: id, Msg: msg, Dests: bitset.FromSlice(n, dests)}
}

func TestFIFOBasics(t *testing.T) {
	var f FIFO
	if !f.Empty() || f.Len() != 0 || f.HeadWorm() != nil {
		t.Fatal("fresh FIFO not empty")
	}
	w1 := mkWorm(1, 4, 1, 2, []int{1})
	w2 := mkWorm(2, 4, 1, 1, []int{2})
	for i := 0; i < w1.Len(); i++ {
		f.Push(flit.Ref{W: w1, Idx: i})
	}
	for i := 0; i < w2.Len(); i++ {
		f.Push(flit.Ref{W: w2, Idx: i})
	}
	if f.Len() != w1.Len()+w2.Len() {
		t.Fatalf("len = %d", f.Len())
	}
	if f.HeadWorm() != w1 || f.HeadAvail() != w1.Len() || f.HeadIdx() != 0 {
		t.Fatal("head bookkeeping wrong")
	}
	for i := 0; i < w1.Len(); i++ {
		r := f.Pop()
		if r.W != w1 || r.Idx != i {
			t.Fatalf("pop %d: got %v", i, r)
		}
	}
	if f.HeadWorm() != w2 {
		t.Fatal("second worm not at head")
	}
	for i := 0; i < w2.Len(); i++ {
		f.Pop()
	}
	if !f.Empty() {
		t.Fatal("not empty after popping all")
	}
}

func TestFIFONonContiguousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var f FIFO
	w := mkWorm(1, 4, 1, 3, []int{1})
	f.Push(flit.Ref{W: w, Idx: 0})
	f.Push(flit.Ref{W: w, Idx: 2})
}

// Property: the segment FIFO behaves exactly like a plain slice queue for
// arbitrary interleavings of contiguous worm segments.
func TestFIFOQuickAgainstSlice(t *testing.T) {
	f := func(ops []uint8) bool {
		var fifo FIFO
		var ref []flit.Ref
		worms := []*flit.Worm{}
		wormNext := []int{}
		for _, op := range ops {
			if op%3 == 0 || len(worms) == 0 || allDone(worms, wormNext) {
				// Start a new worm.
				w := mkWorm(uint64(len(worms)+1), 8, 1, int(op%7)+1, []int{1})
				worms = append(worms, w)
				wormNext = append(wormNext, 0)
			}
			last := len(worms) - 1
			if wormNext[last] < worms[last].Len() {
				r := flit.Ref{W: worms[last], Idx: wormNext[last]}
				fifo.Push(r)
				ref = append(ref, r)
				wormNext[last]++
			}
			if op%2 == 1 && len(ref) > 0 {
				got := fifo.Pop()
				want := ref[0]
				ref = ref[1:]
				if got != want {
					return false
				}
			}
			if fifo.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func allDone(worms []*flit.Worm, next []int) bool {
	last := len(worms) - 1
	return next[last] >= worms[last].Len()
}

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin(4)
	// All requesting: grants must rotate 0,1,2,3,0,...
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, rr.Pick(func(int) bool { return true }))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsNonRequesters(t *testing.T) {
	rr := NewRoundRobin(4)
	only2 := func(i int) bool { return i == 2 }
	if rr.Pick(only2) != 2 {
		t.Fatal("did not find sole requester")
	}
	if rr.Pick(func(int) bool { return false }) != -1 {
		t.Fatal("granted with no requesters")
	}
}

func TestAscending(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 2)
	sw := net.SwitchAt(0, 0)
	if !Ascending(sw, 0) {
		t.Fatal("down port not ascending")
	}
	if Ascending(sw, sw.PortNum(topology.Up, 0)) {
		t.Fatal("up port ascending")
	}
}

func TestPlanBranchesForksChildren(t *testing.T) {
	net, _ := topology.NewKaryTree(4, 2)
	r := &routing.Router{Net: net, ReplicateOnUpPath: true, Policy: routing.UpHash}
	var ids engine.IDGen
	rng := engine.NewRNG(1)
	sw := net.SwitchAt(0, 0)
	w := mkWorm(100, net.N, 1, 8, []int{1, 2, 9})
	w.GoingUp = true
	ids.Next() // burn one so children get fresh ids

	plans, dropped, err := PlanBranches(r, sw, w, true, func(int) bool { return true }, nil, rng, &ids, new(flit.WormArena))
	if err != nil {
		t.Fatal(err)
	}
	if !dropped.Empty() {
		t.Fatalf("healthy plan dropped %v", dropped.Members())
	}
	// Dests 1,2 under this switch; 9 ascends.
	if len(plans) != 3 {
		t.Fatalf("got %d branches, want 3", len(plans))
	}
	union := bitset.New(net.N)
	upBranches := 0
	for _, p := range plans {
		c := p.Child
		if c == w {
			t.Fatal("child aliases parent")
		}
		if c.Msg != w.Msg {
			t.Fatal("child lost message")
		}
		if c.Hops != w.Hops+1 {
			t.Fatalf("child hops = %d", c.Hops)
		}
		if c.GoingUp {
			upBranches++
			if sw.Ports[p.Port].Kind != topology.Up {
				t.Fatal("ascending child on a down port")
			}
		}
		union.OrIn(c.Dests)
	}
	if upBranches != 1 {
		t.Fatalf("up branches = %d", upBranches)
	}
	if !union.Equal(w.Dests) {
		t.Fatalf("children cover %v, want %v", union, w.Dests)
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	var f FIFO
	w := mkWorm(1, 4, 1, 1<<20, []int{1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Push(flit.Ref{W: w, Idx: i})
		if i%8 == 7 {
			for j := 0; j < 8; j++ {
				f.Pop()
			}
		}
	}
}
