// Package switches holds the plumbing shared by the switch
// microarchitectures: port/link bundles, round-robin arbitration, and the
// branch planner that turns a routing decision into forked child worms.
package switches

import (
	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/topology"
)

// PortIO bundles the two unidirectional links of one bidirectional port.
type PortIO struct {
	// In carries flits arriving into the switch on this port.
	In *engine.Link
	// Out carries flits leaving the switch on this port.
	Out *engine.Link
}

// Ascending reports whether a worm arriving on the given port of sw is
// still on its way up: down ports receive traffic from below (processors or
// lower stages), up ports receive traffic descending from above.
func Ascending(sw *topology.Switch, port int) bool {
	return sw.Ports[port].Kind == topology.Down
}

// Planned is one output branch of a worm at a switch, carrying the forked
// child worm that continues on that port.
type Planned struct {
	Port  int
	Child *flit.Worm
}

// PlanBranches routes worm w arriving at sw (ascending or descending) and
// forks one child worm per branch. free reports whether an output port is
// currently unbound (consulted by the adaptive up policy); rng drives the
// random up policy. dead, when non-nil, marks output ports whose links have
// failed: the plan routes around them and the second result carries the
// destinations that became unreachable, for the caller to account as
// dropped. A plan may legitimately be empty when every branch died.
func PlanBranches(r *routing.Router, sw *topology.Switch, w *flit.Worm, ascending bool,
	free func(port int) bool, dead func(port int) bool,
	rng *engine.RNG, ids *engine.IDGen, arena *flit.WormArena) ([]Planned, bitset.Set, error) {

	dec, dropped, err := r.RouteAvoid(sw, w.Dests, ascending, dead)
	if err != nil {
		return nil, bitset.Set{}, err
	}
	plans := make([]Planned, 0, dec.NumBranches())
	for _, b := range dec.Down {
		plans = append(plans, Planned{Port: b.Port, Child: fork(w, b.Dests, false, ids, arena)})
	}
	if !dec.UpDests.Empty() {
		port := r.PickUp(&dec, w.Msg, free, rng)
		plans = append(plans, Planned{Port: port, Child: fork(w, dec.UpDests, true, ids, arena)})
	}
	return plans, dropped, nil
}

// AnyDeadOut reports whether any output link of the port set has failed.
// Switch decoders use it to skip fault-avoidance routing entirely on a
// healthy fabric.
func AnyDeadOut(ports []PortIO) bool {
	for i := range ports {
		if out := ports[i].Out; out != nil && out.Dead() {
			return true
		}
	}
	return false
}

func fork(w *flit.Worm, dests bitset.Set, goingUp bool, ids *engine.IDGen, arena *flit.WormArena) *flit.Worm {
	child := arena.New()
	*child = flit.Worm{
		ID:      ids.Next(),
		Msg:     w.Msg,
		Dests:   dests,
		GoingUp: goingUp,
		Hops:    w.Hops + 1,
	}
	return child
}

// RoundRobin is a fair pick-one arbiter over n requesters.
type RoundRobin struct {
	n    int
	last int
}

// NewRoundRobin returns an arbiter over n requesters.
func NewRoundRobin(n int) *RoundRobin {
	return &RoundRobin{n: n, last: n - 1}
}

// Pick returns the first requester after the previous grant for which want
// returns true, or -1 if none. A successful pick advances the pointer.
func (rr *RoundRobin) Pick(want func(i int) bool) int {
	for k := 1; k <= rr.n; k++ {
		i := (rr.last + k) % rr.n
		if want(i) {
			rr.last = i
			return i
		}
	}
	return -1
}

// Occupancy is an instantaneous snapshot of the buffered state inside one
// switch, taken by the observability probe between cycles.
type Occupancy struct {
	// InputFlits is the total number of flits buffered across input
	// FIFOs/buffers.
	InputFlits int
	// MaxInputQ is the deepest single input FIFO/buffer.
	MaxInputQ int
	// OutputFlits is the total staged in output FIFOs (central-buffer
	// model only; the input-buffered model has no output staging).
	OutputFlits int
	// CBChunks is the number of central-buffer chunks currently allocated
	// (central-buffer model only).
	CBChunks int
}

// Stats aggregates counters common to all switch models.
type Stats struct {
	FlitsIn      int64 // flits accepted from input links
	FlitsOut     int64 // flits pushed onto output links
	Decodes      int64 // routing decisions made
	Replications int64 // extra branches created (branches beyond the first)
	WormsDropped int64 // branches abandoned because of injected faults
	DestsDropped int64 // destinations those branches would have covered
}
