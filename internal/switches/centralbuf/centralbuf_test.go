package centralbuf

import (
	"testing"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/switches"
	"mdworm/internal/topology"
)

// harness wires one stage-0 switch of a single-stage tree (4 processor
// ports) to scripted drivers and sinks.
type harness struct {
	t   *testing.T
	sim *engine.Simulation
	net *topology.Network
	sw  *Switch
	in  []*engine.Link // into the switch, per port
	out []*engine.Link // out of the switch, per port
	snk []*sink
	drv []*driver
	ids engine.IDGen
}

// driver injects one worm's flits onto a link as credits allow.
type driver struct {
	link *engine.Link
	worm *flit.Worm
	next int
	from int64 // start cycle
}

func (d *driver) Name() string   { return "driver" }
func (d *driver) Quiesced() bool { return d.worm == nil || d.next >= d.worm.Len() }
func (d *driver) Step(now int64) {
	if d.Quiesced() || now < d.from || !d.link.CanSend(now) {
		return
	}
	d.link.Send(now, flit.Ref{W: d.worm, Idx: d.next})
	d.next++
}

// sink consumes flits, optionally holding off until a release cycle to
// model a blocked destination.
type sink struct {
	link    *engine.Link
	holdOff int64 // consume nothing before this cycle
	got     []flit.Ref
	tailAt  map[uint64]int64 // worm id -> tail arrival cycle
}

func (s *sink) Name() string   { return "sink" }
func (s *sink) Quiesced() bool { return true }
func (s *sink) Step(now int64) {
	if now < s.holdOff {
		return
	}
	if _, ok := s.link.Arrived(now); !ok {
		return
	}
	r := s.link.TakeArrived(now)
	s.link.ReturnCredit(now, 1)
	s.got = append(s.got, r)
	if r.Tail() {
		if s.tailAt == nil {
			s.tailAt = map[uint64]int64{}
		}
		s.tailAt[r.W.ID] = now
	}
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	net, err := topology.NewKaryTree(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: net}
	h.sim = engine.NewSimulation(10_000)
	router := &routing.Router{Net: net, ReplicateOnUpPath: true, Policy: routing.UpHash}
	node := net.Switches[0]
	ports := make([]switches.PortIO, node.NumPorts())
	for p := 0; p < 4; p++ {
		in := h.sim.NewLink("in", 1, cfg.InFIFOFlits)
		out := h.sim.NewLink("out", 1, 8)
		ports[p] = switches.PortIO{In: in, Out: out}
		h.in = append(h.in, in)
		h.out = append(h.out, out)
		snk := &sink{link: out}
		h.snk = append(h.snk, snk)
		h.sim.AddComponent(snk)
	}
	h.sw = New(cfg, node, router, ports, engine.NewRNG(1), &h.ids, h.sim)
	h.sim.AddComponent(h.sw)
	return h
}

// inject schedules a worm from the processor on port from to dests.
func (h *harness) inject(from int, dests []int, payload int, startAt int64) *flit.Worm {
	msg := &flit.Message{
		ID:           h.ids.Next(),
		Src:          from,
		Dests:        dests,
		PayloadFlits: payload,
		HeaderFlits:  1,
		Class:        flit.ClassUnicast,
	}
	if len(dests) > 1 {
		msg.Class = flit.ClassMulticast
	}
	w := &flit.Worm{ID: h.ids.Next(), Msg: msg, Dests: bitset.FromSlice(h.net.N, dests), GoingUp: true}
	d := &driver{link: h.in[from], worm: w, from: startAt}
	h.drv = append(h.drv, d)
	h.sim.AddComponent(d)
	return w
}

func (h *harness) run(maxCycles int64) {
	h.t.Helper()
	ok, err := h.sim.Drain(maxCycles)
	if err != nil {
		h.t.Fatalf("drain: %v\n%s", err, h.sw.Dump())
	}
	if !ok {
		h.t.Fatalf("did not drain in %d cycles\n%s", maxCycles, h.sw.Dump())
	}
}

// expectWorm verifies a sink received exactly one complete copy of a worm
// with the given message, in order.
func (h *harness) expectCopy(port int, msg *flit.Message) {
	h.t.Helper()
	s := h.snk[port]
	var flits []flit.Ref
	for _, r := range s.got {
		if r.W.Msg == msg {
			flits = append(flits, r)
		}
	}
	if len(flits) != msg.Len() {
		h.t.Fatalf("port %d got %d flits of msg %d, want %d", port, len(flits), msg.ID, msg.Len())
	}
	for i, r := range flits {
		if r.Idx != i {
			h.t.Fatalf("port %d msg %d: flit %d out of order (idx %d)", port, msg.ID, i, r.Idx)
		}
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxPacketFlits = 65
	cfg.Chunks = 32 // 16 per direction pool
	return cfg
}

func TestUnicastCutThrough(t *testing.T) {
	h := newHarness(t, testConfig())
	w := h.inject(0, []int{2}, 16, 0)
	h.run(1000)
	h.expectCopy(2, w.Msg)
	st := h.sw.Stats()
	if st.BypassFlits != int64(w.Len()) {
		t.Fatalf("bypass flits = %d, want %d", st.BypassFlits, w.Len())
	}
	if st.BufferFlits != 0 {
		t.Fatalf("buffer flits = %d, want 0 (pure cut-through)", st.BufferFlits)
	}
	// Latency: inject at 0, link 1, route delay 4, per-flit pipeline.
	tail := h.snk[2].tailAt[hWormID(h, w)]
	if tail < int64(w.Len()) || tail > int64(w.Len())+20 {
		t.Fatalf("cut-through tail at %d, want near %d", tail, w.Len())
	}
}

// hWormID finds the delivered branch worm id for the message of w (the
// branch child forked inside the switch, not the injected worm).
func hWormID(h *harness, w *flit.Worm) uint64 {
	for _, s := range h.snk {
		for _, r := range s.got {
			if r.W.Msg == w.Msg {
				return r.W.ID
			}
		}
	}
	h.t.Fatalf("message %d never delivered", w.Msg.ID)
	return 0
}

func TestSecondUnicastDivertsToCentralBuffer(t *testing.T) {
	h := newHarness(t, testConfig())
	w1 := h.inject(0, []int{2}, 32, 0)
	w2 := h.inject(1, []int{2}, 32, 0)
	h.run(2000)
	h.expectCopy(2, w1.Msg)
	h.expectCopy(2, w2.Msg)
	st := h.sw.Stats()
	if st.UnicastCBEnters != 1 {
		t.Fatalf("unicast CB enters = %d, want 1", st.UnicastCBEnters)
	}
	if st.BufferFlits == 0 {
		t.Fatal("no flits through the central buffer")
	}
}

func TestMulticastReplication(t *testing.T) {
	h := newHarness(t, testConfig())
	w := h.inject(0, []int{1, 2, 3}, 32, 0)
	h.run(2000)
	for _, p := range []int{1, 2, 3} {
		h.expectCopy(p, w.Msg)
	}
	st := h.sw.Stats()
	if st.AdmittedMcasts != 1 {
		t.Fatalf("admitted mcasts = %d", st.AdmittedMcasts)
	}
	if st.Replications != 2 {
		t.Fatalf("replications = %d, want 2 (3 branches - 1)", st.Replications)
	}
	if st.BufferFlits != int64(w.Len()) {
		t.Fatalf("buffer flits = %d, want %d (written once)", st.BufferFlits, w.Len())
	}
	if !h.sw.Quiesced() {
		t.Fatal("switch not quiesced after drain")
	}
}

// TestAsynchronousReplication: one destination refuses to consume for a long
// time; the other branches must complete long before it.
func TestAsynchronousReplication(t *testing.T) {
	h := newHarness(t, testConfig())
	h.snk[3].holdOff = 500
	w := h.inject(0, []int{1, 2, 3}, 32, 0)
	h.run(3000)
	for _, p := range []int{1, 2, 3} {
		h.expectCopy(p, w.Msg)
	}
	fast := h.snk[1].tailAt[deliveredID(h, 1, w.Msg)]
	slow := h.snk[3].tailAt[deliveredID(h, 3, w.Msg)]
	if fast >= 500 {
		t.Fatalf("unblocked branch finished at %d, held hostage by blocked branch", fast)
	}
	if slow < 500 {
		t.Fatalf("blocked branch finished at %d despite hold-off", slow)
	}
}

func deliveredID(h *harness, port int, msg *flit.Message) uint64 {
	for _, r := range h.snk[port].got {
		if r.W.Msg == msg {
			return r.W.ID
		}
	}
	h.t.Fatalf("port %d never saw msg %d", port, msg.ID)
	return 0
}

// TestReservationBlocksSecondMulticast: with a pool that holds exactly one
// packet, two simultaneous multicasts must serialize through the
// reservation queue yet both complete.
func TestReservationBlocksSecondMulticast(t *testing.T) {
	cfg := testConfig()
	cfg.Chunks = 2 * ((33 + cfg.ChunkFlits - 1) / cfg.ChunkFlits) // one packet per pool
	cfg.MaxPacketFlits = 33
	h := newHarness(t, cfg)
	w1 := h.inject(0, []int{2, 3}, 32, 0)
	w2 := h.inject(1, []int{2, 3}, 32, 0)
	h.run(5000)
	for _, p := range []int{2, 3} {
		h.expectCopy(p, w1.Msg)
		h.expectCopy(p, w2.Msg)
	}
	st := h.sw.Stats()
	if st.AdmittedMcasts != 2 {
		t.Fatalf("admitted = %d", st.AdmittedMcasts)
	}
	if st.ReserveWaitSum == 0 {
		t.Fatal("no reservation wait recorded despite tiny pool")
	}
}

// TestManyWormsConservation floods all inputs with a mix of traffic and
// checks flit conservation.
func TestManyWormsConservation(t *testing.T) {
	h := newHarness(t, testConfig())
	total := 0
	rng := engine.NewRNG(5)
	for i := 0; i < 12; i++ {
		from := i % 4
		var dests []int
		if i%3 == 0 {
			for d := 0; d < 4; d++ {
				if d != from {
					dests = append(dests, d)
				}
			}
		} else {
			dests = []int{(from + 1 + rng.Intn(3)) % 4}
			if dests[0] == from {
				dests[0] = (from + 1) % 4
			}
		}
		w := h.inject(from, dests, 16+rng.Intn(32), int64(i*3))
		total += w.Len() * len(dests)
	}
	h.run(20_000)
	got := 0
	for _, s := range h.snk {
		got += len(s.got)
	}
	if got != total {
		t.Fatalf("delivered %d flits, want %d", got, total)
	}
	if !h.sw.Quiesced() {
		t.Fatal("switch holds state after drain")
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(4); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.MaxPacketFlits = bad.Chunks * bad.ChunkFlits // exceeds one pool
	if err := bad.Validate(4); err == nil {
		t.Error("oversized packet accepted")
	}
	bad = good
	bad.InFIFOFlits = 2
	if err := bad.Validate(4); err == nil {
		t.Error("header larger than input FIFO accepted")
	}
	bad = good
	bad.Chunks = 0
	if err := bad.Validate(1); err == nil {
		t.Error("zero chunks accepted")
	}
	bad = good
	bad.RouteDelay = -1
	if err := bad.Validate(1); err == nil {
		t.Error("negative route delay accepted")
	}
}

// TestZeroRouteDelay exercises the immediate-decode path.
func TestZeroRouteDelay(t *testing.T) {
	cfg := testConfig()
	cfg.RouteDelay = 0
	h := newHarness(t, cfg)
	w := h.inject(0, []int{1}, 8, 0)
	h.run(500)
	h.expectCopy(1, w.Msg)
}

// TestMulticastBypassSingleAblation: with the knob on, a multicast whose
// branch set is one port cuts through.
func TestMulticastBypassSingleAblation(t *testing.T) {
	cfg := testConfig()
	cfg.MulticastBypassSingle = true
	h := newHarness(t, cfg)
	w := h.inject(0, []int{2}, 16, 0)
	w.Msg.Class = flit.ClassMulticast
	h.run(1000)
	h.expectCopy(2, w.Msg)
	if st := h.sw.Stats(); st.BufferFlits != 0 {
		t.Fatalf("single-branch multicast used the buffer (%d flits) despite bypass knob", st.BufferFlits)
	}
}

// TestPortBandwidthLimit: with a single buffer port, a 3-way replication
// still completes but takes roughly 3x as long to read out.
func TestPortBandwidthLimit(t *testing.T) {
	run := func(bw int) int64 {
		cfg := testConfig()
		cfg.PortBandwidth = bw
		h := newHarness(t, cfg)
		w := h.inject(0, []int{1, 2, 3}, 48, 0)
		h.run(5000)
		var last int64
		for _, p := range []int{1, 2, 3} {
			h.expectCopy(p, w.Msg)
			if at := h.snk[p].tailAt[deliveredID(h, p, w.Msg)]; at > last {
				last = at
			}
		}
		return last
	}
	full := run(0)
	narrow := run(1)
	if narrow <= full {
		t.Fatalf("bandwidth limit had no effect: full=%d narrow=%d", full, narrow)
	}
	if float64(narrow) < 1.8*float64(full) {
		t.Fatalf("1-port readout only %.2fx slower than full (want near 3x)", float64(narrow)/float64(full))
	}
}

// TestBarrierCombiningSingleSwitch drives raw tokens through one switch:
// tokens from every host port combine into a release broadcast (the switch
// is its own spanning-tree root).
func TestBarrierCombiningSingleSwitch(t *testing.T) {
	h := newHarness(t, testConfig())
	op := flit.NewOp(99, flit.ClassBarrier, 0, 4, 0)
	for p := 0; p < 4; p++ {
		msg := &flit.Message{ID: h.ids.Next(), Src: p, Dests: []int{p},
			Class: flit.ClassBarrier, HeaderFlits: 1, Op: op}
		w := &flit.Worm{ID: h.ids.Next(), Msg: msg, Dests: bitset.FromSlice(4, []int{p})}
		d := &driver{link: h.in[p], worm: w, from: int64(p * 7)} // staggered arrivals
		h.sim.AddComponent(d)
	}
	h.run(2000)
	st := h.sw.Stats()
	if st.TokensCombined != 4 {
		t.Fatalf("combined %d tokens, want 4", st.TokensCombined)
	}
	if st.TokensEmitted != 4 {
		t.Fatalf("emitted %d tokens, want 4 releases", st.TokensEmitted)
	}
	// Every host receives exactly one single-flit release.
	for p := 0; p < 4; p++ {
		got := 0
		for _, r := range h.snk[p].got {
			if r.W.Msg.Class == flit.ClassBarrier {
				got++
			}
		}
		if got != 1 {
			t.Fatalf("host %d received %d release tokens", p, got)
		}
	}
	if !h.sw.Quiesced() {
		t.Fatal("combining state not cleared")
	}
}

// TestBarrierCombiningWaitsForAll: no release until the last token arrives.
func TestBarrierCombiningWaitsForAll(t *testing.T) {
	h := newHarness(t, testConfig())
	op := flit.NewOp(99, flit.ClassBarrier, 0, 4, 0)
	for p := 0; p < 4; p++ {
		msg := &flit.Message{ID: h.ids.Next(), Src: p, Dests: []int{p},
			Class: flit.ClassBarrier, HeaderFlits: 1, Op: op}
		w := &flit.Worm{ID: h.ids.Next(), Msg: msg, Dests: bitset.FromSlice(4, []int{p})}
		start := int64(0)
		if p == 3 {
			start = 300 // the straggler
		}
		h.sim.AddComponent(&driver{link: h.in[p], worm: w, from: start})
	}
	h.run(2000)
	for p := 0; p < 4; p++ {
		for _, r := range h.snk[p].got {
			if r.W.Msg.Class != flit.ClassBarrier {
				continue
			}
			if at := h.snk[p].tailAt[r.W.ID]; at < 300 {
				t.Fatalf("host %d released at %d, before the straggler arrived", p, at)
			}
		}
	}
}
