package centralbuf

import (
	"mdworm/internal/bitset"
	"mdworm/internal/flit"
	"mdworm/internal/switches"
)

// In-switch barrier combining (the switch enhancement for barrier
// synchronization studied in the authors' companion work): hosts inject
// single-flit barrier tokens; each switch on the designated spanning tree
// (every switch follows its first up port) counts arriving tokens instead of
// routing them, emits one combined token upward when all of its down-port
// subtrees have reported, and — at the root — broadcasts release tokens back
// down the same tree until every host receives one. Tokens bypass the
// central buffer entirely (they are one flit and carry no payload); they are
// consumed at the input FIFO head and re-emitted at packet boundaries on the
// output FIFOs, so they interleave safely with data traffic.
//
// One barrier may be in flight at a time (counters are per-switch scalars);
// the core driver enforces this.

type pendingToken struct {
	port int
	worm *flit.Worm
}

// expectedTokens returns how many down-port subtrees report into this
// switch: one per down port with any processor below.
func (s *Switch) expectedTokens() int {
	if s.expected == 0 {
		for _, pn := range s.node.DownPorts() {
			if !s.node.Ports[pn].Reach.Empty() {
				s.expected++
			}
		}
	}
	return s.expected
}

// handleToken consumes an arriving barrier token (already popped from the
// input FIFO) and advances the combine/release protocol.
func (s *Switch) handleToken(port int, w *flit.Worm) {
	if switches.Ascending(s.node, port) {
		s.combineCount++
		s.stats.TokensCombined++
		if s.combineCount < s.expectedTokens() {
			return
		}
		// Subtree complete: reset and either forward up or release.
		s.combineCount = 0
		ups := s.node.UpPorts()
		if len(ups) > 0 {
			s.emitToken(ups[0], nil, w.Msg.Op)
			return
		}
		// Root of the spanning tree: release downward.
		s.emitRelease(w.Msg.Op)
		return
	}
	// Descending release token: replicate to every reporting down port.
	s.emitRelease(w.Msg.Op)
}

// emitRelease sends a release token down every down port with processors
// below.
func (s *Switch) emitRelease(op *flit.Op) {
	for _, pn := range s.node.DownPorts() {
		pt := &s.node.Ports[pn]
		if pt.Reach.Empty() {
			continue
		}
		var dest *int
		if pt.Proc >= 0 {
			dest = &pt.Proc
		}
		s.emitToken(pn, dest, op)
	}
}

// emitToken queues a switch-generated single-flit token for the output
// port; when dest is non-nil the token is addressed to that processor.
func (s *Switch) emitToken(port int, dest *int, op *flit.Op) {
	msg := &flit.Message{
		ID:          s.ids.Next(),
		Class:       flit.ClassBarrier,
		HeaderFlits: 1,
		Op:          op,
	}
	dests := bitset.New(s.node.ReachAll().Cap())
	if dest != nil {
		msg.Dests = []int{*dest}
		dests.Add(*dest)
	}
	w := s.arena.New()
	*w = flit.Worm{ID: s.ids.Next(), Msg: msg, Dests: dests}
	s.pendingTok = append(s.pendingTok, pendingToken{port: port, worm: w})
	s.sim.Progress()
}

// drainTokens moves queued tokens into output FIFOs at packet boundaries
// (an idle, unbound output whose FIFO does not end mid-worm).
func (s *Switch) drainTokens() {
	if len(s.pendingTok) == 0 {
		return
	}
	kept := s.pendingTok[:0]
	for _, pt := range s.pendingTok {
		st := &s.out[pt.port]
		boundary := st.mode == outIdle && len(st.queue) == 0 &&
			(st.fifo.Len() == 0 || st.fifo.Last().Tail())
		if boundary && st.fifo.Len() < s.cfg.OutFIFOFlits {
			st.fifo.Push(flit.Ref{W: pt.worm, Idx: 0})
			s.stats.TokensEmitted++
			s.sim.Progress()
			continue
		}
		kept = append(kept, pt)
	}
	s.pendingTok = kept
}

// tokenQuiesced reports whether no barrier state is held.
func (s *Switch) tokenQuiesced() bool {
	return s.combineCount == 0 && len(s.pendingTok) == 0
}
