// Package centralbuf implements the central-buffer-based switch
// architecture of the paper, modeled on the IBM SP2 High Performance
// Switch / SP Switch: a dynamically shared central buffer organized in
// chunks with per-output queuing, a cut-through bypass path for unblocked
// traffic, and multidestination worm replication performed by writing the
// worm into the central buffer once and letting every requested output port
// read it out independently (reference-counted chunks).
//
// Deadlock freedom follows the paper's rule that a packet accepted for
// transmission can always be completely buffered at the switch: every
// central-buffer entry — unicast or multidestination — reserves its full
// chunk count before its first flit is written, so every resident packet is
// guaranteed to finish writing and output queues always drain. (Letting
// unicasts buffer partially wedges the switch: a chunk-starved,
// partially-written packet at the head of an output queue blocks the
// fully-written packets behind it that hold all the chunks.)
//
// A single shared pool would couple ascending and descending channels of the
// up*/down* routing into a cyclic buffer dependency (a classic
// store-and-forward deadlock: two switches, each full of packets whose
// readers wait on the other's input FIFO, whose head waits on a
// reservation). The pool is therefore partitioned by direction — one
// sub-pool for packets that arrived ascending (on down ports) and one for
// packets arriving descending (on up ports) — restoring an acyclic
// structured-buffer-pool order: descending pools drain by induction from
// stage 0 (NICs always consume), ascending pools drain by induction from the
// top stage into descending pools. Each sub-pool holds at least one maximum
// packet, and reservations accrue to a single FIFO head per sub-pool, which
// prevents both starvation and circular partial holds.
package centralbuf

import (
	"fmt"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
	"mdworm/internal/routing"
	"mdworm/internal/switches"
	"mdworm/internal/topology"
)

// Config holds the microarchitectural parameters of the switch.
type Config struct {
	// InFIFOFlits is the capacity of each input FIFO; it is also the
	// credit count granted to the upstream link. It must be at least the
	// largest header (the whole header must be buffered to decode).
	InFIFOFlits int
	// OutFIFOFlits is the capacity of each output FIFO.
	OutFIFOFlits int
	// Chunks is the number of chunks in the central buffer. The pool is
	// split evenly between ascending and descending traffic (see the
	// package comment); each half must hold the largest packet.
	Chunks int
	// ChunkFlits is the chunk size in flits.
	ChunkFlits int
	// RouteDelay is the decode/arbitration latency in cycles charged
	// after a complete header reaches the front of an input FIFO.
	RouteDelay int
	// MaxPacketFlits bounds packet size; the central buffer must hold the
	// largest packet (Chunks*ChunkFlits >= MaxPacketFlits).
	MaxPacketFlits int
	// MulticastBypassSingle lets a multidestination worm whose branch set
	// at this switch is a single output use the unicast cut-through path
	// instead of being fully buffered. This is an ablation knob; the
	// paper's conservative design fully buffers every multidestination
	// worm, which is the default (false).
	MulticastBypassSingle bool
	// PortBandwidth bounds how many flits may be written into and (independently)
	// read out of the central buffer per cycle, modeling the memory
	// implementation: the authors' companion work shows flit-wide RAMs or a
	// register pipeline sustain one flit per port per cycle (the default,
	// 0 = unlimited), while a naive single-ported memory would bottleneck
	// at 1-2 transfers per cycle. Ablation knob.
	PortBandwidth int
}

// DefaultConfig returns SP-Switch-plausible defaults.
func DefaultConfig() Config {
	return Config{
		InFIFOFlits:    8,
		OutFIFOFlits:   8,
		Chunks:         128,
		ChunkFlits:     8,
		RouteDelay:     4,
		MaxPacketFlits: 512,
	}
}

// Validate checks internal consistency given the largest header in flits.
func (c Config) Validate(maxHeaderFlits int) error {
	switch {
	case c.InFIFOFlits < 1 || c.OutFIFOFlits < 1:
		return fmt.Errorf("centralbuf: FIFO sizes must be >= 1")
	case c.Chunks < 1 || c.ChunkFlits < 1:
		return fmt.Errorf("centralbuf: central buffer must have >= 1 chunk of >= 1 flit")
	case c.RouteDelay < 0:
		return fmt.Errorf("centralbuf: negative route delay")
	case c.MaxPacketFlits > (c.Chunks/2)*c.ChunkFlits:
		return fmt.Errorf("centralbuf: max packet (%d flits) exceeds a central-buffer direction pool (%d flits); "+
			"multidestination worms could never be fully buffered",
			c.MaxPacketFlits, (c.Chunks/2)*c.ChunkFlits)
	case maxHeaderFlits > c.InFIFOFlits:
		return fmt.Errorf("centralbuf: header (%d flits) exceeds input FIFO (%d flits); decode could never complete",
			maxHeaderFlits, c.InFIFOFlits)
	}
	return nil
}

// Stats exposes per-switch counters for ablation studies.
type Stats struct {
	switches.Stats
	BypassFlits     int64 // flits that cut through without touching the central buffer
	BufferFlits     int64 // flits written into the central buffer
	AdmittedMcasts  int64 // multidestination worms admitted to the central buffer
	ReserveWaitSum  int64 // total cycles multicasts waited for reservation
	MaxChunksInUse  int   // high-water mark of allocated chunks
	MaxBranchRefs   int   // high-water mark of output references (readers) on one buffered worm
	UnicastCBEnters int64 // unicast packets diverted through the central buffer (busy output)
	TokensCombined  int64 // barrier tokens absorbed by the combining logic
	TokensEmitted   int64 // barrier tokens generated (combined-up or release)
}

// Direction pools of the central buffer (see the package comment).
const (
	poolUp   = 0 // packets that arrived ascending (on down ports)
	poolDown = 1 // packets that arrived descending (on up ports)
)

type inputMode uint8

const (
	modeIdle inputMode = iota
	modeHeader
	modeDecode
	modeReserve
	modeBypass
	modeWrite
	// modeSink consumes the remaining flits of a worm whose every branch
	// died (fault degradation): flits are popped and credits returned, so
	// upstream drains instead of wedging on a doomed worm.
	modeSink
)

type inputState struct {
	q          switches.FIFO
	mode       inputMode
	worm       *flit.Worm
	decodeLeft int
	plans      []switches.Planned
	pb         *packetBuf
	bypassOut  int
	waitSince  int64
}

type outputMode uint8

const (
	outIdle outputMode = iota
	outBypass
	outCB
)

type outputState struct {
	fifo    refFIFO
	mode    outputMode
	boundIn int       // input index when mode == outBypass
	cur     *cbBranch // branch being served when mode == outCB
	queue   []*cbBranch
}

// packetBuf is one worm stored in (or streaming through) the central buffer.
type packetBuf struct {
	worm        *flit.Worm
	total       int
	written     int
	reserved    int // chunks reserved but not yet allocated
	chunksAlloc int
	chunksFreed int
	branches    []*cbBranch
	multicast   bool
	need        int // total chunks needed (multicast reservation target)
	input       int
	pool        int // direction pool the packet allocates from
}

type cbBranch struct {
	pb    *packetBuf
	child *flit.Worm
	out   int
	read  int
}

func (pb *packetBuf) minRead() int {
	m := pb.total
	for _, b := range pb.branches {
		if b.read < m {
			m = b.read
		}
	}
	return m
}

func (pb *packetBuf) chunkEnd(c int, chunkFlits int) int {
	e := (c + 1) * chunkFlits
	if e > pb.total {
		e = pb.total
	}
	return e
}

// Switch is one central-buffer switch instance.
type Switch struct {
	cfg    Config
	node   *topology.Switch
	router *routing.Router
	ports  []switches.PortIO
	rng    *engine.RNG
	ids    *engine.IDGen
	sim    *engine.Simulation
	arena  flit.WormArena

	in  []inputState
	out []outputState

	free        [2]int // free chunks per direction pool
	chunksInUse int
	wrBudget    int // central-buffer write slots left this cycle
	rdBudget    int // central-buffer read slots left this cycle

	reservedTotal int    // chunks reserved (not yet allocated) across all packets
	poolCap       [2]int // initial capacity per direction pool
	removed       [2]int // chunks permanently removed per pool (CBShrink fault)
	pendingShrink int    // shrink capacity still to absorb as chunks free
	minPool       int    // chunks a pool must retain to hold a maximum packet
	leakLatch     bool   // suppresses repeated chunk-conservation reports

	// Barrier combining state (see combine.go).
	combineCount int
	expected     int
	pendingTok   []pendingToken
	pendingRes   [2][]*packetBuf // reservation queue per direction pool
	livePB       int

	stats Stats
}

// New creates a switch bound to its topology node and port links. All ports
// of the node must be wired to links by the caller (unconnected ports get
// nil PortIO entries).
func New(cfg Config, node *topology.Switch, router *routing.Router, ports []switches.PortIO,
	rng *engine.RNG, ids *engine.IDGen, sim *engine.Simulation) *Switch {

	if len(ports) != node.NumPorts() {
		panic("centralbuf: port count mismatch")
	}
	s := &Switch{
		cfg:    cfg,
		node:   node,
		router: router,
		ports:  ports,
		rng:    rng,
		ids:    ids,
		sim:    sim,
		in:     make([]inputState, len(ports)),
		out:    make([]outputState, len(ports)),
	}
	s.free[poolUp] = cfg.Chunks / 2
	s.free[poolDown] = cfg.Chunks - cfg.Chunks/2
	s.poolCap[poolUp] = s.free[poolUp]
	s.poolCap[poolDown] = s.free[poolDown]
	s.minPool = (cfg.MaxPacketFlits + cfg.ChunkFlits - 1) / cfg.ChunkFlits
	for i := range s.in {
		s.in[i].bypassOut = -1
	}
	for o := range s.out {
		s.out[o].boundIn = -1
	}
	return s
}

// Name identifies the switch in diagnostics.
func (s *Switch) Name() string {
	return fmt.Sprintf("cb-sw%d(s%d,%d)", s.node.ID, s.node.Stage, s.node.Pos)
}

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats { return s.stats }

// Occupancy returns an instantaneous snapshot of the buffered state for the
// observability probe.
func (s *Switch) Occupancy() switches.Occupancy {
	var o switches.Occupancy
	for i := range s.in {
		n := s.in[i].q.Len()
		o.InputFlits += n
		if n > o.MaxInputQ {
			o.MaxInputQ = n
		}
	}
	for i := range s.out {
		o.OutputFlits += s.out[i].fifo.Len()
	}
	o.CBChunks = s.chunksInUse
	return o
}

// InputCredits returns the credit count to grant on links feeding this
// switch (the input FIFO capacity).
func (s *Switch) InputCredits() int { return s.cfg.InFIFOFlits }

// Quiesced reports whether the switch holds no flits or packet state.
func (s *Switch) Quiesced() bool {
	if s.livePB != 0 || len(s.pendingRes[poolUp]) != 0 || len(s.pendingRes[poolDown]) != 0 {
		return false
	}
	if !s.tokenQuiesced() {
		return false
	}
	for i := range s.in {
		if s.in[i].mode != modeIdle || !s.in[i].q.Empty() {
			return false
		}
	}
	for o := range s.out {
		if s.out[o].mode != outIdle || s.out[o].fifo.Len() != 0 || len(s.out[o].queue) != 0 {
			return false
		}
	}
	return true
}

// Step advances the switch one cycle: outputs drain to links and pull from
// the central buffer, inputs decode and move flits, the reservation heads
// accrue freed chunks, and new arrivals are accepted.
func (s *Switch) Step(now int64) {
	if s.cfg.PortBandwidth > 0 {
		s.wrBudget = s.cfg.PortBandwidth
		s.rdBudget = s.cfg.PortBandwidth
	} else {
		s.wrBudget = len(s.in)
		s.rdBudget = len(s.out)
	}
	s.stepOutputsDrain(now)
	s.drainTokens()
	s.stepOutputsServe(now)
	s.stepInputs(now)
	s.accrueReservations(now)
	s.acceptArrivals(now)
	s.checkChunkConservation(now)
}

// checkChunkConservation asserts, every cycle, that free + in-use + reserved
// + removed chunks account for exactly the configured capacity. The latch
// reports a broken ledger once instead of flooding the counters.
func (s *Switch) checkChunkConservation(now int64) {
	total := s.free[poolUp] + s.free[poolDown] + s.chunksInUse + s.reservedTotal +
		s.removed[poolUp] + s.removed[poolDown]
	if total != s.cfg.Chunks {
		if !s.leakLatch {
			s.leakLatch = true
			s.sim.Invariants().Violate(now, "cb-chunk-leak",
				"%s: %d chunks accounted of %d (free=%v inUse=%d reserved=%d removed=%v)",
				s.Name(), total, s.cfg.Chunks, s.free, s.chunksInUse, s.reservedTotal, s.removed)
		}
		return
	}
	s.leakLatch = false
}

func (s *Switch) stepOutputsDrain(now int64) {
	for o := range s.out {
		st := &s.out[o]
		out := s.ports[o].Out
		if st.fifo.Len() == 0 || out == nil {
			continue
		}
		if out.CanSend(now) {
			out.Send(now, st.fifo.Pop())
			s.stats.FlitsOut++
		} else if out.Dead() && !out.MidWorm() && st.fifo.Front().Head() {
			// The head worm never started transmission and never will;
			// discard it at this clean boundary instead of wedging.
			s.discardOutput(o, now)
		}
	}
}

// discardOutput drops the output FIFO's head worm when its link died before
// the worm began transmission, unwinding whichever data path was feeding it
// (central-buffer read, bypass stream, or an already-complete buffered worm)
// so upstream state drains and the drop is accounted.
func (s *Switch) discardOutput(o int, now int64) {
	st := &s.out[o]
	head := st.fifo.Front()
	if head.W.Msg.Class == flit.ClassBarrier {
		// A severed barrier tree cannot complete; leave the token for the
		// watchdog to convert into a structured deadlock report.
		return
	}
	switch {
	case st.mode == outCB && st.cur != nil && st.cur.child == head.W:
		b := st.cur
		s.reportDrop(now, b.child, b.child.Dests)
		s.purgeFIFO(st, head.W)
		st.cur = nil
		st.mode = outIdle
		b.read = b.pb.total
		s.advanceFreeing(b.pb, now)
	case st.mode == outBypass && st.boundIn >= 0 && s.in[st.boundIn].mode == modeBypass &&
		s.in[st.boundIn].plans[0].Child == head.W:
		in := &s.in[st.boundIn]
		s.reportDrop(now, head.W, head.W.Dests)
		s.purgeFIFO(st, head.W)
		in.mode = modeSink
		in.bypassOut = -1
		st.mode = outIdle
		st.boundIn = -1
	default:
		// The worm is fully present in the FIFO (a finished central-buffer
		// read or completed bypass).
		s.reportDrop(now, head.W, head.W.Dests)
		s.purgeFIFO(st, head.W)
	}
}

// purgeFIFO removes every flit of worm w from the output FIFO, preserving
// the order of other worms' flits.
func (s *Switch) purgeFIFO(st *outputState, w *flit.Worm) {
	live := st.fifo.All()
	kept := live[:0]
	for _, r := range live {
		if r.W != w {
			kept = append(kept, r)
		}
	}
	st.fifo.Rebuild(kept)
}

// reportDrop accounts destinations abandoned because of an injected fault.
func (s *Switch) reportDrop(now int64, w *flit.Worm, dropped bitset.Set) {
	n := flit.DropCost(w, dropped)
	if n == 0 {
		return
	}
	s.stats.WormsDropped++
	s.stats.DestsDropped += int64(dropped.Count())
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceDrop, Actor: s.Name(),
			Msg: w.Msg.ID, Worm: w.ID,
			Detail: fmt.Sprintf("dests=%v cost=%d", dropped.Members(), n)})
	}
	if s.router.OnDrop != nil {
		s.router.OnDrop(w.Msg, n, now)
	}
	s.sim.Progress()
}

func (s *Switch) stepOutputsServe(now int64) {
	for o := range s.out {
		st := &s.out[o]
		if st.mode == outIdle {
			out := s.ports[o].Out
			for len(st.queue) > 0 {
				b := st.queue[0]
				if out != nil && out.Dead() {
					// The branch can never be transmitted; account the
					// drop and release its hold on the packet.
					st.queue = st.queue[1:]
					s.reportDrop(now, b.child, b.child.Dests)
					b.read = b.pb.total
					s.advanceFreeing(b.pb, now)
					continue
				}
				st.cur = b
				st.queue = st.queue[1:]
				st.mode = outCB
				break
			}
		}
		if st.mode != outCB {
			continue
		}
		b := st.cur
		if s.rdBudget == 0 || st.fifo.Len() >= s.cfg.OutFIFOFlits || b.read >= b.pb.written {
			continue
		}
		s.rdBudget--
		st.fifo.Push(flit.Ref{W: b.child, Idx: b.read})
		b.read++
		s.advanceFreeing(b.pb, now)
		if b.read == b.pb.total {
			st.cur = nil
			st.mode = outIdle
		}
	}
}

// advanceFreeing releases chunks every reader has fully consumed.
func (s *Switch) advanceFreeing(pb *packetBuf, now int64) {
	m := pb.minRead()
	for pb.chunksFreed < pb.chunksAlloc && m >= pb.chunkEnd(pb.chunksFreed, s.cfg.ChunkFlits) {
		pb.chunksFreed++
		s.chunksInUse--
		s.free[pb.pool]++
	}
	if s.pendingShrink > 0 {
		s.absorbShrink()
	}
	if m == pb.total && pb.written == pb.total {
		s.retirePB(pb, now)
	}
}

// retirePB retires a fully-written, fully-read packet. The reference counts
// must have reached zero exactly here; anything else is a model bug, reported
// to the checker and repaired so the run can continue in lenient mode.
func (s *Switch) retirePB(pb *packetBuf, now int64) {
	if pb.chunksFreed != pb.chunksAlloc {
		s.sim.Invariants().Violate(now, "cb-refcount",
			"%s: retiring packet (worm %d) with %d/%d chunks freed",
			s.Name(), pb.worm.ID, pb.chunksFreed, pb.chunksAlloc)
		for pb.chunksFreed < pb.chunksAlloc {
			pb.chunksFreed++
			s.chunksInUse--
			s.free[pb.pool]++
		}
	}
	if pb.reserved != 0 {
		s.sim.Invariants().Violate(now, "cb-refcount",
			"%s: retiring packet (worm %d) with %d reserved chunks",
			s.Name(), pb.worm.ID, pb.reserved)
		s.free[pb.pool] += pb.reserved
		s.reservedTotal -= pb.reserved
		pb.reserved = 0
	}
	s.livePB--
}

// Shrink permanently removes n chunks of central-buffer capacity (the
// CBShrink fault). Free chunks are withdrawn immediately, preferring the
// larger free pool; capacity still in use is absorbed as packets drain. A
// pool never shrinks below the chunks needed to hold one maximum packet, so
// the buffering-completeness guarantee — and with it deadlock freedom —
// survives the fault (any excess shrink beyond that floor stays pending
// forever, i.e. is refused).
func (s *Switch) Shrink(n int) {
	if n <= 0 {
		return
	}
	s.pendingShrink += n
	s.absorbShrink()
}

func (s *Switch) absorbShrink() {
	for s.pendingShrink > 0 {
		best := -1
		for pool := range s.free {
			if s.free[pool] == 0 || s.poolCap[pool]-s.removed[pool] <= s.minPool {
				continue
			}
			if best < 0 || s.free[pool] > s.free[best] {
				best = pool
			}
		}
		if best < 0 {
			return
		}
		s.free[best]--
		s.removed[best]++
		s.pendingShrink--
	}
}

// accrueReservations gives freed chunks to the head of each direction
// pool's reservation queue; a fully reserved multicast is admitted: its
// branches join the output queues and its input may start writing.
func (s *Switch) accrueReservations(now int64) {
	if s.pendingShrink > 0 {
		s.absorbShrink()
	}
	for pool := range s.pendingRes {
		for len(s.pendingRes[pool]) > 0 {
			head := s.pendingRes[pool][0]
			want := head.need - head.reserved
			grab := min(want, s.free[pool])
			if grab > 0 {
				head.reserved += grab
				s.free[pool] -= grab
				s.reservedTotal += grab
				s.sim.Progress()
			}
			if head.reserved < head.need {
				break
			}
			s.admit(head, now)
			s.pendingRes[pool] = s.pendingRes[pool][1:]
		}
	}
}

func (s *Switch) admit(pb *packetBuf, now int64) {
	for _, b := range pb.branches {
		s.out[b.out].queue = append(s.out[b.out].queue, b)
	}
	in := &s.in[pb.input]
	in.mode = modeWrite
	in.pb = pb
	if pb.multicast {
		s.stats.AdmittedMcasts++
	}
	if n := len(pb.branches); n > s.stats.MaxBranchRefs {
		s.stats.MaxBranchRefs = n
	}
	s.stats.ReserveWaitSum += now - in.waitSince
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceAdmit, Actor: s.Name(),
			Msg: pb.worm.Msg.ID, Worm: pb.worm.ID,
			Detail: fmt.Sprintf("waited=%d chunks=%d", now-in.waitSince, pb.need)})
	}
	s.sim.Progress()
}

func (s *Switch) stepInputs(now int64) {
	n := len(s.in)
	// The service origin rotates one slot per cycle. It is derived from the
	// clock (not a stored counter) so that cycles the active-set scheduler
	// skips — during which the stored counter could not advance — leave the
	// arbitration sequence bit-identical to an always-stepped switch.
	off := int((now + 1) % int64(n))
	for k := 0; k < n; k++ {
		s.stepInput((off+k)%n, now)
	}
}

func (s *Switch) stepInput(i int, now int64) {
	in := &s.in[i]
	switch in.mode {
	case modeIdle:
		if w := in.q.HeadWorm(); w != nil && w.Msg.Class == flit.ClassBarrier {
			// Barrier tokens never enter the routing pipeline: consume
			// and hand to the combining logic.
			r := in.q.Pop()
			s.ports[i].In.ReturnCredit(now, 1)
			s.handleToken(i, r.W)
			return
		}
		if w := in.q.HeadWorm(); w != nil {
			if in.q.HeadIdx() != 0 {
				panic(fmt.Sprintf("%s: input %d head worm starts at flit %d", s.Name(), i, in.q.HeadIdx()))
			}
			in.worm = w
			in.mode = modeHeader
		}
		if in.mode != modeHeader {
			return
		}
		fallthrough
	case modeHeader:
		need := min(in.worm.HeaderFlits(), in.worm.Len())
		if in.q.HeadAvail() < need {
			return
		}
		in.decodeLeft = s.cfg.RouteDelay
		in.mode = modeDecode
		fallthrough
	case modeDecode:
		if in.decodeLeft > 0 {
			in.decodeLeft--
			s.sim.Progress()
			return
		}
		s.decode(i, now)
	case modeReserve:
		// Waiting for accrueReservations to admit; nothing to do.
	case modeBypass:
		s.pushBypass(i, now)
	case modeWrite:
		s.writeCB(i, now)
	case modeSink:
		s.sinkInput(i, now)
	}
}

// sinkInput consumes one flit per cycle of a worm whose branches all died,
// returning credits so the upstream sender drains.
func (s *Switch) sinkInput(i int, now int64) {
	in := &s.in[i]
	if in.q.Empty() || in.q.HeadWorm() != in.worm {
		return
	}
	r := in.q.Pop()
	s.ports[i].In.ReturnCredit(now, 1)
	s.sim.Progress()
	if r.Tail() {
		s.clearInput(in)
	}
}

// decode routes the head worm and chooses its data path.
func (s *Switch) decode(i int, now int64) {
	in := &s.in[i]
	ascending := switches.Ascending(s.node, i)
	free := func(port int) bool {
		return s.out[port].mode == outIdle && len(s.out[port].queue) == 0
	}
	// A nil dead predicate keeps healthy fabrics on the allocation-free
	// routing fast path; avoidance engages only once a link has failed.
	var dead func(port int) bool
	if switches.AnyDeadOut(s.ports) {
		dead = func(port int) bool {
			out := s.ports[port].Out
			return out != nil && out.Dead()
		}
	}
	plans, dropped, err := switches.PlanBranches(s.router, s.node, in.worm, ascending, free, dead, s.rng, s.ids, &s.arena)
	if err != nil {
		panic(fmt.Sprintf("%s: input %d: %v", s.Name(), i, err))
	}
	s.stats.Decodes++
	in.plans = plans
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceDecode, Actor: s.Name(),
			Msg: in.worm.Msg.ID, Worm: in.worm.ID,
			Detail: fmt.Sprintf("in=%d branches=%d", i, len(plans))})
	}
	if !dropped.Empty() {
		s.reportDrop(now, in.worm, dropped)
	}
	if len(plans) == 0 {
		// Every branch died: swallow the worm so upstream drains.
		in.mode = modeSink
		s.sinkInput(i, now)
		return
	}
	s.stats.Replications += int64(len(plans) - 1)

	unicastLike := in.worm.Msg.Class == flit.ClassUnicast ||
		(len(plans) == 1 && s.cfg.MulticastBypassSingle)
	if unicastLike && len(plans) != 1 {
		panic(fmt.Sprintf("%s: unicast worm %d produced %d branches", s.Name(), in.worm.ID, len(plans)))
	}

	pool := poolDown
	if ascending {
		pool = poolUp
	}

	if unicastLike {
		o := plans[0].Port
		if s.out[o].mode == outIdle && len(s.out[o].queue) == 0 {
			s.out[o].mode = outBypass
			s.out[o].boundIn = i
			in.bypassOut = o
			in.mode = modeBypass
			s.pushBypass(i, now)
			return
		}
		s.stats.UnicastCBEnters++
	}

	// Divert through the central buffer. Every central-buffer entry —
	// unicast or multidestination — reserves its full chunk count before
	// its first flit is written (the paper's rule that an accepted packet
	// can always be completely buffered). A partially-buffered packet at
	// the head of an output queue whose writer is chunk-starved would
	// otherwise wedge the switch: every chunk behind it belongs to
	// fully-written packets that can never be read past it.
	pb := s.newPacketBuf(i, !unicastLike, pool)
	pb.need = (pb.total + s.cfg.ChunkFlits - 1) / s.cfg.ChunkFlits
	s.livePB++
	in.pb = pb
	in.waitSince = now
	if len(s.pendingRes[pool]) == 0 && s.free[pool] >= pb.need {
		pb.reserved = pb.need
		s.free[pool] -= pb.need
		s.reservedTotal += pb.need
		s.admit(pb, now)
		s.writeCB(i, now)
		return
	}
	in.mode = modeReserve
	s.pendingRes[pool] = append(s.pendingRes[pool], pb)
	if s.sim.Tracing() {
		s.sim.Emit(engine.TraceEvent{Kind: engine.TraceReserve, Actor: s.Name(),
			Msg: in.worm.Msg.ID, Worm: in.worm.ID,
			Detail: fmt.Sprintf("need=%d pool=%d queue=%d", pb.need, pool, len(s.pendingRes[pool]))})
	}
}

func (s *Switch) newPacketBuf(i int, multicast bool, pool int) *packetBuf {
	in := &s.in[i]
	pb := &packetBuf{
		worm:      in.worm,
		total:     in.worm.Len(),
		multicast: multicast,
		input:     i,
		pool:      pool,
	}
	pb.branches = make([]*cbBranch, len(in.plans))
	for bi, p := range in.plans {
		pb.branches[bi] = &cbBranch{pb: pb, child: p.Child, out: p.Port}
	}
	return pb
}

// pushBypass moves one flit from the input FIFO straight to the bound
// output FIFO.
func (s *Switch) pushBypass(i int, now int64) {
	in := &s.in[i]
	o := in.bypassOut
	st := &s.out[o]
	if in.q.Empty() || in.q.HeadWorm() != in.worm || st.fifo.Len() >= s.cfg.OutFIFOFlits {
		return
	}
	r := in.q.Pop()
	s.ports[i].In.ReturnCredit(now, 1)
	st.fifo.Push(flit.Ref{W: in.plans[0].Child, Idx: r.Idx})
	s.stats.BypassFlits++
	if r.Tail() {
		st.mode = outIdle
		st.boundIn = -1
		s.clearInput(in)
	}
}

// writeCB moves one flit from the input FIFO into the central buffer.
func (s *Switch) writeCB(i int, now int64) {
	in := &s.in[i]
	pb := in.pb
	if s.wrBudget == 0 || in.q.Empty() || in.q.HeadWorm() != in.worm {
		return
	}
	if pb.written%s.cfg.ChunkFlits == 0 {
		// Convert one reserved chunk into an allocation; full up-front
		// reservation guarantees this never runs dry.
		if pb.reserved == 0 {
			panic(fmt.Sprintf("%s: input %d writer out of reserved chunks at flit %d/%d",
				s.Name(), i, pb.written, pb.total))
		}
		pb.reserved--
		s.reservedTotal--
		pb.chunksAlloc++
		s.chunksInUse++
		if s.chunksInUse > s.stats.MaxChunksInUse {
			s.stats.MaxChunksInUse = s.chunksInUse
		}
	}
	r := in.q.Pop()
	s.ports[i].In.ReturnCredit(now, 1)
	if r.Idx != pb.written {
		panic(fmt.Sprintf("%s: input %d wrote flit %d, expected %d", s.Name(), i, r.Idx, pb.written))
	}
	pb.written++
	s.wrBudget--
	s.stats.BufferFlits++
	s.sim.Progress()
	if r.Tail() {
		s.clearInput(in)
		s.advanceFreeing(pb, now)
	}
}

func (s *Switch) clearInput(in *inputState) {
	in.mode = modeIdle
	in.worm = nil
	in.plans = nil
	in.pb = nil
	in.bypassOut = -1
}

func (s *Switch) acceptArrivals(now int64) {
	for i := range s.in {
		if s.ports[i].In == nil {
			continue
		}
		if _, ok := s.ports[i].In.Arrived(now); ok {
			r := s.ports[i].In.TakeArrived(now)
			if s.in[i].q.Len() >= s.cfg.InFIFOFlits {
				panic(fmt.Sprintf("%s: input %d FIFO overflow (credit protocol violated)", s.Name(), i))
			}
			s.in[i].q.Push(r)
			s.stats.FlitsIn++
		}
	}
}
