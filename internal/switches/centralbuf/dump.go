package centralbuf

import (
	"fmt"
	"strings"
)

// Dump renders the full internal state of the switch for deadlock
// diagnosis.
func (s *Switch) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s free=[up:%d down:%d] inUse=%d pending=[up:%d down:%d] livePB=%d\n",
		s.Name(), s.free[poolUp], s.free[poolDown], s.chunksInUse,
		len(s.pendingRes[poolUp]), len(s.pendingRes[poolDown]), s.livePB)
	modeNames := []string{"idle", "header", "decode", "reserve", "bypass", "write"}
	outModes := []string{"idle", "bypass", "cb"}
	for i := range s.in {
		in := &s.in[i]
		if in.mode == modeIdle && in.q.Empty() {
			continue
		}
		fmt.Fprintf(&b, "  in%d mode=%s qlen=%d", i, modeNames[in.mode], in.q.Len())
		if in.worm != nil {
			fmt.Fprintf(&b, " worm=%d(msg%d,%s,len%d)", in.worm.ID, in.worm.Msg.ID, in.worm.Msg.Class, in.worm.Len())
		}
		if in.pb != nil {
			fmt.Fprintf(&b, " pb{written=%d/%d res=%d alloc=%d freed=%d need=%d pool=%d}",
				in.pb.written, in.pb.total, in.pb.reserved, in.pb.chunksAlloc, in.pb.chunksFreed, in.pb.need, in.pb.pool)
		}
		if in.bypassOut >= 0 {
			fmt.Fprintf(&b, " bypass->%d", in.bypassOut)
		}
		b.WriteByte('\n')
	}
	for o := range s.out {
		st := &s.out[o]
		if st.mode == outIdle && st.fifo.Len() == 0 && len(st.queue) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  out%d mode=%s fifo=%d queue=%d", o, outModes[st.mode], st.fifo.Len(), len(st.queue))
		if st.mode == outBypass {
			fmt.Fprintf(&b, " boundIn=%d", st.boundIn)
		}
		if st.cur != nil {
			fmt.Fprintf(&b, " cur{worm=%d read=%d written=%d/%d}",
				st.cur.child.ID, st.cur.read, st.cur.pb.written, st.cur.pb.total)
		}
		for qi, qb := range st.queue {
			if qi >= 3 {
				fmt.Fprintf(&b, " ...")
				break
			}
			fmt.Fprintf(&b, " q%d{worm=%d read=%d wr=%d/%d mc=%v}",
				qi, qb.child.ID, qb.read, qb.pb.written, qb.pb.total, qb.pb.multicast)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
