package centralbuf

import "mdworm/internal/flit"

// refFIFO is a flit queue over a reusable backing array. The output FIFOs
// push and pop one flit nearly every busy cycle; a head index over a
// recycled buffer keeps that path allocation-free, where a pop-by-reslice
// slice would force append to grow forever.
type refFIFO struct {
	buf  []flit.Ref
	head int
}

func (f *refFIFO) Len() int        { return len(f.buf) - f.head }
func (f *refFIFO) Front() flit.Ref { return f.buf[f.head] }
func (f *refFIFO) Last() flit.Ref  { return f.buf[len(f.buf)-1] }

// All returns the live contents front to back, valid until the next Push.
func (f *refFIFO) All() []flit.Ref { return f.buf[f.head:] }

func (f *refFIFO) Push(r flit.Ref) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		// Reclaim the popped prefix instead of growing.
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, r)
}

func (f *refFIFO) Pop() flit.Ref {
	r := f.buf[f.head]
	f.buf[f.head] = flit.Ref{} // release the worm pointer for GC
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return r
}

// Rebuild replaces the contents with kept, which must alias All() (the
// fault-path purge filters in place and hands back the kept prefix).
func (f *refFIFO) Rebuild(kept []flit.Ref) {
	n := copy(f.buf[f.head:], kept)
	f.buf = f.buf[:f.head+n]
}

func (f *refFIFO) Reset() {
	f.buf = f.buf[:0]
	f.head = 0
}
