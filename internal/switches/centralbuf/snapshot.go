package centralbuf

import (
	"mdworm/internal/ckpt"
	"mdworm/internal/switches"
)

// Checkpoint support. The switch's mutable state is its input pipelines,
// output services, the central-buffer packet table with its refcounted
// branches, the direction pools, barrier combining, counters, and the
// per-switch RNG position. packetBuf and cbBranch form a shared-pointer
// graph (an output's cur/queue aliases the branches of a packet an input
// may still be writing), so packets are encoded once in a deterministic
// table and every other site refers to (packet index, branch index) pairs.

// livePackets enumerates every reachable packetBuf in deterministic order:
// input writers first (ascending input index), then the reservation queues,
// then output services. Duplicates are skipped via the index map.
func (s *Switch) livePackets() ([]*packetBuf, map[*packetBuf]int) {
	var pbs []*packetBuf
	idx := make(map[*packetBuf]int)
	add := func(pb *packetBuf) {
		if pb == nil {
			return
		}
		if _, ok := idx[pb]; ok {
			return
		}
		idx[pb] = len(pbs)
		pbs = append(pbs, pb)
	}
	for i := range s.in {
		add(s.in[i].pb)
	}
	for pool := range s.pendingRes {
		for _, pb := range s.pendingRes[pool] {
			add(pb)
		}
	}
	for o := range s.out {
		if s.out[o].cur != nil {
			add(s.out[o].cur.pb)
		}
		for _, b := range s.out[o].queue {
			add(b.pb)
		}
	}
	return pbs, idx
}

// branchRef encodes a branch as (packet index, branch index); (-1, -1) is
// nil.
func branchRef(e *ckpt.Enc, idx map[*packetBuf]int, b *cbBranch) {
	if b == nil {
		e.Int(-1)
		e.Int(-1)
		return
	}
	pi, ok := idx[b.pb]
	if !ok {
		panic("centralbuf: branch of unenumerated packet")
	}
	bi := -1
	for k, cand := range b.pb.branches {
		if cand == b {
			bi = k
			break
		}
	}
	if bi < 0 {
		panic("centralbuf: branch not in its packet's branch list")
	}
	e.Int(pi)
	e.Int(bi)
}

// branchAt resolves a decoded (packet, branch) pair.
func branchAt(d *ckpt.Dec, pbs []*packetBuf) *cbBranch {
	pi := d.Int()
	bi := d.Int()
	if d.Err() != nil {
		return nil
	}
	if pi == -1 && bi == -1 {
		return nil
	}
	if pi < 0 || pi >= len(pbs) || bi < 0 || bi >= len(pbs[pi].branches) {
		d.Fail("centralbuf: branch ref (%d,%d) out of range", pi, bi)
		return nil
	}
	return pbs[pi].branches[bi]
}

// CollectState adds every worm the switch holds to the checkpoint graph.
func (s *Switch) CollectState(g *ckpt.Graph) {
	for i := range s.in {
		in := &s.in[i]
		in.q.CollectState(g)
		g.AddWorm(in.worm)
		for _, p := range in.plans {
			g.AddWorm(p.Child)
		}
	}
	for o := range s.out {
		for _, r := range s.out[o].fifo.All() {
			g.AddWorm(r.W)
		}
	}
	pbs, _ := s.livePackets()
	for _, pb := range pbs {
		g.AddWorm(pb.worm)
		for _, b := range pb.branches {
			g.AddWorm(b.child)
		}
	}
	for _, pt := range s.pendingTok {
		g.AddWorm(pt.worm)
	}
}

// EncodeState writes the switch's mutable state.
func (s *Switch) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	pbs, idx := s.livePackets()

	e.Int(len(pbs))
	for _, pb := range pbs {
		e.U64(g.WormID(pb.worm))
		e.Int(pb.total)
		e.Int(pb.written)
		e.Int(pb.reserved)
		e.Int(pb.chunksAlloc)
		e.Int(pb.chunksFreed)
		e.Bool(pb.multicast)
		e.Int(pb.need)
		e.Int(pb.input)
		e.Int(pb.pool)
		e.Int(len(pb.branches))
		for _, b := range pb.branches {
			e.U64(g.WormID(b.child))
			e.Int(b.out)
			e.Int(b.read)
		}
	}

	e.Int(len(s.in))
	for i := range s.in {
		in := &s.in[i]
		in.q.EncodeState(e, g)
		e.U8(uint8(in.mode))
		e.U64(g.WormID(in.worm))
		e.Int(in.decodeLeft)
		e.Int(len(in.plans))
		for _, p := range in.plans {
			e.Int(p.Port)
			e.U64(g.WormID(p.Child))
		}
		if in.pb == nil {
			e.Int(-1)
		} else {
			e.Int(idx[in.pb])
		}
		e.Int(in.bypassOut)
		e.I64(in.waitSince)
	}

	e.Int(len(s.out))
	for o := range s.out {
		st := &s.out[o]
		e.Int(st.fifo.Len())
		for _, r := range st.fifo.All() {
			switches.EncodeRef(e, g, r)
		}
		e.U8(uint8(st.mode))
		e.Int(st.boundIn)
		branchRef(e, idx, st.cur)
		e.Int(len(st.queue))
		for _, b := range st.queue {
			branchRef(e, idx, b)
		}
	}

	for pool := range s.pendingRes {
		e.Int(len(s.pendingRes[pool]))
		for _, pb := range s.pendingRes[pool] {
			e.Int(idx[pb])
		}
	}

	e.Int(s.free[poolUp])
	e.Int(s.free[poolDown])
	e.Int(s.chunksInUse)
	e.Int(s.reservedTotal)
	e.Int(s.removed[poolUp])
	e.Int(s.removed[poolDown])
	e.Int(s.pendingShrink)
	e.Bool(s.leakLatch)
	e.Int(s.livePB)

	e.Int(s.combineCount)
	e.Int(s.expected)
	e.Int(len(s.pendingTok))
	for _, pt := range s.pendingTok {
		e.Int(pt.port)
		e.U64(g.WormID(pt.worm))
	}

	switches.EncodeStats(e, &s.stats.Stats)
	e.I64(s.stats.BypassFlits)
	e.I64(s.stats.BufferFlits)
	e.I64(s.stats.AdmittedMcasts)
	e.I64(s.stats.ReserveWaitSum)
	e.Int(s.stats.MaxChunksInUse)
	e.Int(s.stats.MaxBranchRefs)
	e.I64(s.stats.UnicastCBEnters)
	e.I64(s.stats.TokensCombined)
	e.I64(s.stats.TokensEmitted)

	e.U64(s.rng.State())
}

// DecodeState restores the switch over a freshly constructed twin.
func (s *Switch) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	npb := d.Count(8)
	pbs := make([]*packetBuf, 0, npb)
	for i := 0; i < npb && d.Err() == nil; i++ {
		pb := &packetBuf{
			worm:        g.WormAt(d, d.U64()),
			total:       d.Int(),
			written:     d.Int(),
			reserved:    d.Int(),
			chunksAlloc: d.Int(),
			chunksFreed: d.Int(),
			multicast:   d.Bool(),
			need:        d.Int(),
			input:       d.Int(),
			pool:        d.Int(),
		}
		nb := d.Count(8)
		if d.Err() != nil {
			return
		}
		if pb.worm == nil || pb.total != pb.worm.Len() ||
			pb.written < 0 || pb.written > pb.total ||
			pb.reserved < 0 || pb.chunksAlloc < 0 ||
			pb.chunksFreed < 0 || pb.chunksFreed > pb.chunksAlloc ||
			pb.input < 0 || pb.input >= len(s.in) ||
			(pb.pool != poolUp && pb.pool != poolDown) {
			d.Fail("%s: packet %d inconsistent", s.Name(), i)
			return
		}
		pb.branches = make([]*cbBranch, nb)
		for bi := range pb.branches {
			b := &cbBranch{pb: pb, child: g.WormAt(d, d.U64()), out: d.Int(), read: d.Int()}
			if d.Err() != nil {
				return
			}
			if b.child == nil || b.out < 0 || b.out >= len(s.out) || b.read < 0 || b.read > pb.total {
				d.Fail("%s: packet %d branch %d inconsistent", s.Name(), i, bi)
				return
			}
			pb.branches[bi] = b
		}
		pbs = append(pbs, pb)
	}

	nin := d.Count(8)
	if d.Err() != nil {
		return
	}
	if nin != len(s.in) {
		d.Fail("%s: %d inputs, checkpoint has %d", s.Name(), len(s.in), nin)
		return
	}
	for i := range s.in {
		in := &s.in[i]
		in.q.DecodeState(d, g)
		in.mode = inputMode(d.U8())
		in.worm = g.WormAt(d, d.U64())
		in.decodeLeft = d.Int()
		np := d.Count(16)
		if d.Err() != nil {
			return
		}
		in.plans = nil
		for k := 0; k < np; k++ {
			p := switches.Planned{Port: d.Int(), Child: g.WormAt(d, d.U64())}
			if d.Err() != nil {
				return
			}
			if p.Child == nil || p.Port < 0 || p.Port >= len(s.out) {
				d.Fail("%s: input %d plan %d inconsistent", s.Name(), i, k)
				return
			}
			in.plans = append(in.plans, p)
		}
		pi := d.Int()
		in.bypassOut = d.Int()
		in.waitSince = d.I64()
		if d.Err() != nil {
			return
		}
		if pi == -1 {
			in.pb = nil
		} else if pi >= 0 && pi < len(pbs) {
			in.pb = pbs[pi]
		} else {
			d.Fail("%s: input %d packet ref %d out of range", s.Name(), i, pi)
			return
		}
		if in.mode > modeSink ||
			(in.bypassOut != -1 && (in.bypassOut < 0 || in.bypassOut >= len(s.out))) {
			d.Fail("%s: input %d mode/bypass inconsistent", s.Name(), i)
			return
		}
		// Modes index into their supporting state unconditionally; a
		// checkpoint that promises a mode must supply that state.
		switch in.mode {
		case modeBypass:
			if len(in.plans) == 0 || in.bypassOut < 0 || in.worm == nil {
				d.Fail("%s: input %d bypassing without plan", s.Name(), i)
				return
			}
		case modeWrite:
			if in.pb == nil || in.worm == nil {
				d.Fail("%s: input %d writing without packet", s.Name(), i)
				return
			}
		case modeHeader, modeDecode, modeSink:
			if in.worm == nil {
				d.Fail("%s: input %d mode %d without worm", s.Name(), i, in.mode)
				return
			}
		}
	}

	nout := d.Count(8)
	if d.Err() != nil {
		return
	}
	if nout != len(s.out) {
		d.Fail("%s: %d outputs, checkpoint has %d", s.Name(), len(s.out), nout)
		return
	}
	for o := range s.out {
		st := &s.out[o]
		nf := d.Count(16)
		if d.Err() != nil {
			return
		}
		st.fifo.Reset()
		for k := 0; k < nf; k++ {
			r := switches.DecodeRef(d, g)
			if d.Err() != nil {
				return
			}
			st.fifo.Push(r)
		}
		st.mode = outputMode(d.U8())
		st.boundIn = d.Int()
		st.cur = branchAt(d, pbs)
		nq := d.Count(16)
		if d.Err() != nil {
			return
		}
		st.queue = nil
		for k := 0; k < nq; k++ {
			b := branchAt(d, pbs)
			if d.Err() != nil {
				return
			}
			if b == nil {
				d.Fail("%s: output %d queued nil branch", s.Name(), o)
				return
			}
			st.queue = append(st.queue, b)
		}
		if st.mode > outCB ||
			(st.boundIn != -1 && (st.boundIn < 0 || st.boundIn >= len(s.in))) ||
			(st.mode == outCB && st.cur == nil) {
			d.Fail("%s: output %d mode inconsistent", s.Name(), o)
			return
		}
	}

	for pool := range s.pendingRes {
		nr := d.Count(8)
		if d.Err() != nil {
			return
		}
		s.pendingRes[pool] = nil
		for k := 0; k < nr; k++ {
			pi := d.Int()
			if d.Err() != nil {
				return
			}
			if pi < 0 || pi >= len(pbs) {
				d.Fail("%s: reservation queue ref %d out of range", s.Name(), pi)
				return
			}
			s.pendingRes[pool] = append(s.pendingRes[pool], pbs[pi])
		}
	}

	s.free[poolUp] = d.Int()
	s.free[poolDown] = d.Int()
	s.chunksInUse = d.Int()
	s.reservedTotal = d.Int()
	s.removed[poolUp] = d.Int()
	s.removed[poolDown] = d.Int()
	s.pendingShrink = d.Int()
	s.leakLatch = d.Bool()
	s.livePB = d.Int()

	s.combineCount = d.Int()
	s.expected = d.Int()
	ntok := d.Count(16)
	if d.Err() != nil {
		return
	}
	s.pendingTok = nil
	for k := 0; k < ntok; k++ {
		pt := pendingToken{port: d.Int(), worm: g.WormAt(d, d.U64())}
		if d.Err() != nil {
			return
		}
		if pt.worm == nil || pt.port < 0 || pt.port >= len(s.out) {
			d.Fail("%s: pending token %d inconsistent", s.Name(), k)
			return
		}
		s.pendingTok = append(s.pendingTok, pt)
	}

	switches.DecodeStats(d, &s.stats.Stats)
	s.stats.BypassFlits = d.I64()
	s.stats.BufferFlits = d.I64()
	s.stats.AdmittedMcasts = d.I64()
	s.stats.ReserveWaitSum = d.I64()
	s.stats.MaxChunksInUse = d.Int()
	s.stats.MaxBranchRefs = d.Int()
	s.stats.UnicastCBEnters = d.I64()
	s.stats.TokensCombined = d.I64()
	s.stats.TokensEmitted = d.I64()

	s.rng.SetState(d.U64())
	if d.Err() != nil {
		return
	}
	if s.free[poolUp] < 0 || s.free[poolDown] < 0 || s.chunksInUse < 0 || s.reservedTotal < 0 {
		d.Fail("%s: negative chunk pool", s.Name())
		return
	}
	// A latched leak means the live ledger was already broken when the
	// checkpoint was written; only an unlatched ledger must sum.
	if !s.leakLatch && s.free[poolUp]+s.free[poolDown]+s.chunksInUse+s.reservedTotal+
		s.removed[poolUp]+s.removed[poolDown] != s.cfg.Chunks {
		d.Fail("%s: chunk ledger does not sum to %d", s.Name(), s.cfg.Chunks)
	}
}
