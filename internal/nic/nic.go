// Package nic models the host network interface: message injection with a
// software send overhead, flit-rate ejection with delivery notification, and
// the forwarding engine that software multicast schemes rely on (a received
// message that carries a ForwardStep is re-sent to the receiver's subtree
// after a software receive overhead).
package nic

import (
	"fmt"

	"mdworm/internal/bitset"
	"mdworm/internal/collective"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
)

// Config holds the host-side timing parameters.
type Config struct {
	// SendOverhead is the software cost, in cycles, charged before each
	// message begins injection (the communication start-up time t_s).
	SendOverhead int
	// RecvOverhead is the software cost, in cycles, charged before a
	// received software-multicast message can be forwarded onward.
	RecvOverhead int
	// RecvFIFOFlits is the ejection buffer capacity granted as credits to
	// the final switch; the NIC drains it at one flit per cycle.
	RecvFIFOFlits int
}

// DefaultConfig returns paper-plausible host overheads.
func DefaultConfig() Config {
	return Config{SendOverhead: 64, RecvOverhead: 64, RecvFIFOFlits: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SendOverhead < 0 || c.RecvOverhead < 0 {
		return fmt.Errorf("nic: negative overhead")
	}
	if c.RecvFIFOFlits < 1 {
		return fmt.Errorf("nic: receive FIFO must hold >= 1 flit")
	}
	return nil
}

// DeliveredFunc is invoked when the tail flit of a message reaches its
// destination NIC.
type DeliveredFunc func(m *flit.Message, at *NIC, now int64)

// Stats counts per-NIC activity.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64 // messages abandoned because the injection link failed
	FlitsInjected     int64
	FlitsEjected      int64
	ForwardedMsgs     int64
	SendQueueMax      int
	OverheadCycles    int64
}

type fwdTask struct {
	msg     *flit.Message
	readyAt int64
}

// NIC is one host interface, attached to a stage-0 switch port pair.
type NIC struct {
	proc    int
	n       int // system size, for destination bitsets
	inject  *engine.Link
	eject   *engine.Link
	cfg     Config
	ids     *engine.IDGen
	sim     *engine.Simulation
	factory collective.MessageFactory
	onDelv  DeliveredFunc
	arena   flit.WormArena

	sendQ         []*flit.Message
	overheadLeft  int
	overheadSpent bool // overhead for the head message already paid
	curWorm       *flit.Worm
	curIdx        int

	recvWorm *flit.Worm
	recvGot  int

	tasks []fwdTask

	stallUntil int64 // NICStall fault: no injection strictly before this cycle
	onDrop     func(m *flit.Message, ndests int, now int64)

	stats Stats
}

// New creates a NIC for processor proc in a system of n processors.
// inject carries flits toward the switch; eject carries flits from it.
func New(cfg Config, proc, n int, inject, eject *engine.Link,
	ids *engine.IDGen, sim *engine.Simulation,
	factory collective.MessageFactory, onDelivered DeliveredFunc) *NIC {

	return &NIC{
		proc:    proc,
		n:       n,
		inject:  inject,
		eject:   eject,
		cfg:     cfg,
		ids:     ids,
		sim:     sim,
		factory: factory,
		onDelv:  onDelivered,
	}
}

// Proc returns the processor id this NIC serves.
func (nc *NIC) Proc() int { return nc.proc }

// StallUntil pauses injection strictly before the given cycle (the NICStall
// fault); overlapping windows keep the latest deadline. Ejection and
// software forwarding timers continue.
func (nc *NIC) StallUntil(cycle int64) {
	if cycle > nc.stallUntil {
		nc.stallUntil = cycle
	}
}

// SetOnDrop installs the callback invoked when the NIC abandons pending
// messages because its injection link failed; ndests counts the op
// destinations lost, forwarding subtrees included.
func (nc *NIC) SetOnDrop(fn func(m *flit.Message, ndests int, now int64)) { nc.onDrop = fn }

// Name identifies the NIC in diagnostics.
func (nc *NIC) Name() string { return fmt.Sprintf("nic%d", nc.proc) }

// Stats returns a snapshot of the NIC counters.
func (nc *NIC) Stats() Stats { return nc.stats }

// QueueLen returns the current injection queue length (pending messages).
func (nc *NIC) QueueLen() int {
	q := len(nc.sendQ)
	if nc.curWorm != nil {
		q++
	}
	return q
}

// Submit enqueues messages for injection, in order. It re-arms the NIC in
// the scheduler: a submit is out-of-band stimulation the link fabric cannot
// see, so an idle (skipped) NIC must be woken explicitly.
func (nc *NIC) Submit(msgs ...*flit.Message) {
	nc.sendQ = append(nc.sendQ, msgs...)
	if len(nc.sendQ) > nc.stats.SendQueueMax {
		nc.stats.SendQueueMax = len(nc.sendQ)
	}
	nc.sim.Wake(nc)
}

// Quiesced reports whether the NIC holds no pending or in-flight work.
func (nc *NIC) Quiesced() bool {
	return len(nc.sendQ) == 0 && nc.curWorm == nil &&
		nc.recvWorm == nil && len(nc.tasks) == 0
}

// Step advances the NIC one cycle: eject one flit, run forwarding timers,
// and inject one flit.
func (nc *NIC) Step(now int64) {
	nc.stepEject(now)
	nc.stepForward(now)
	nc.stepInject(now)
}

func (nc *NIC) stepEject(now int64) {
	if nc.eject == nil {
		return
	}
	if _, ok := nc.eject.Arrived(now); !ok {
		return
	}
	r := nc.eject.TakeArrived(now)
	// The NIC consumes at link rate; the buffer slot frees immediately.
	nc.eject.ReturnCredit(now, 1)
	nc.stats.FlitsEjected++
	if nc.recvWorm == nil {
		if r.Idx != 0 {
			panic(fmt.Sprintf("%s: mid-worm flit %v with no active reception", nc.Name(), r))
		}
		nc.recvWorm = r.W
		nc.recvGot = 0
	}
	if r.W != nc.recvWorm || r.Idx != nc.recvGot {
		panic(fmt.Sprintf("%s: interleaved or out-of-order flit %v", nc.Name(), r))
	}
	nc.recvGot++
	if !r.Tail() {
		return
	}
	// Complete message received.
	w := nc.recvWorm
	nc.recvWorm = nil
	nc.recvGot = 0
	if !w.Dests.Has(nc.proc) || w.Dests.Count() != 1 {
		panic(fmt.Sprintf("%s: received worm %d with destination set %v", nc.Name(), w.ID, w.Dests))
	}
	m := w.Msg
	nc.stats.MessagesDelivered++
	if nc.sim.Tracing() {
		var opID uint64
		if m.Op != nil {
			opID = m.Op.ID
		}
		nc.sim.Emit(engine.TraceEvent{Kind: engine.TraceDeliver, Actor: nc.Name(),
			Msg: m.ID, Worm: w.ID, Op: opID})
	}
	if m.Forward != nil && len(m.Forward.Subtree) > 0 {
		nc.tasks = append(nc.tasks, fwdTask{msg: m, readyAt: now + int64(nc.cfg.RecvOverhead)})
	}
	if nc.onDelv != nil {
		nc.onDelv(m, nc, now)
	}
}

func (nc *NIC) stepForward(now int64) {
	if len(nc.tasks) == 0 {
		return
	}
	kept := nc.tasks[:0]
	for _, t := range nc.tasks {
		if t.readyAt > now {
			nc.sim.Progress() // timers are forward progress
			kept = append(kept, t)
			continue
		}
		msgs := collective.ForwardPlan(nc.factory, nc.proc, t.msg.Forward.Subtree,
			t.msg.PayloadFlits, t.msg.Op, now)
		nc.Submit(msgs...)
		nc.stats.ForwardedMsgs += int64(len(msgs))
		if nc.sim.Tracing() {
			nc.sim.Emit(engine.TraceEvent{Kind: engine.TraceForward, Actor: nc.Name(),
				Msg: t.msg.ID, Op: t.msg.Op.ID,
				Detail: fmt.Sprintf("subtree=%v sends=%d", t.msg.Forward.Subtree, len(msgs))})
		}
		nc.sim.Progress()
	}
	nc.tasks = kept
}

func (nc *NIC) stepInject(now int64) {
	if now < nc.stallUntil {
		return
	}
	if nc.inject != nil && nc.inject.Dead() && !nc.inject.MidWorm() {
		// Injection is permanently severed at a worm boundary: nothing can
		// leave this NIC again. Account every pending message as dropped so
		// its op completes instead of hanging the drain.
		nc.dropPending(now)
		return
	}
	if nc.curWorm == nil {
		if len(nc.sendQ) == 0 {
			return
		}
		if !nc.overheadSpent {
			if nc.overheadLeft == 0 {
				nc.overheadLeft = nc.cfg.SendOverhead
			}
			if nc.overheadLeft > 0 {
				nc.overheadLeft--
				nc.stats.OverheadCycles++
				nc.sim.Progress()
				if nc.overheadLeft > 0 {
					return
				}
			}
			nc.overheadSpent = true
		}
		m := nc.sendQ[0]
		nc.sendQ = nc.sendQ[1:]
		nc.overheadSpent = false
		dests := bitset.FromSlice(nc.n, m.Dests)
		nc.curWorm = nc.arena.New()
		*nc.curWorm = flit.Worm{
			ID:      nc.ids.Next(),
			Msg:     m,
			Dests:   dests,
			GoingUp: true,
		}
		nc.curIdx = 0
		m.InjectedAt = now
		if m.Op != nil {
			m.Op.MessagesSent++
		}
		nc.stats.MessagesSent++
		if nc.sim.Tracing() {
			var opID uint64
			if m.Op != nil {
				opID = m.Op.ID
			}
			nc.sim.Emit(engine.TraceEvent{Kind: engine.TraceInject, Actor: nc.Name(),
				Msg: m.ID, Worm: nc.curWorm.ID, Op: opID,
				Detail: fmt.Sprintf("dests=%v len=%d", m.Dests, m.Len())})
		}
	}
	if nc.inject == nil || !nc.inject.CanSend(now) {
		return
	}
	nc.inject.Send(now, flit.Ref{W: nc.curWorm, Idx: nc.curIdx})
	nc.curIdx++
	nc.stats.FlitsInjected++
	if nc.curIdx == nc.curWorm.Len() {
		nc.curWorm = nil
		nc.curIdx = 0
	}
}

// dropPending abandons the un-started current worm (if any) and the whole
// send queue after the injection link failed.
func (nc *NIC) dropPending(now int64) {
	if nc.curWorm != nil {
		// The head flit was never sent (a mid-worm transfer is allowed to
		// finish before reaching here), so the worm can vanish cleanly.
		nc.dropMessage(nc.curWorm.Msg, now)
		nc.curWorm = nil
		nc.curIdx = 0
	}
	for _, m := range nc.sendQ {
		nc.dropMessage(m, now)
	}
	if len(nc.sendQ) > 0 {
		nc.sendQ = nc.sendQ[:0]
	}
	nc.overheadSpent = false
	nc.overheadLeft = 0
}

func (nc *NIC) dropMessage(m *flit.Message, now int64) {
	n := len(m.Dests)
	if m.Forward != nil {
		n += len(m.Forward.Subtree)
	}
	nc.stats.MessagesDropped++
	if nc.sim.Tracing() {
		var opID uint64
		if m.Op != nil {
			opID = m.Op.ID
		}
		nc.sim.Emit(engine.TraceEvent{Kind: engine.TraceDrop, Actor: nc.Name(),
			Msg: m.ID, Op: opID, Detail: fmt.Sprintf("dests=%v cost=%d", m.Dests, n)})
	}
	if nc.onDrop != nil {
		nc.onDrop(m, n, now)
	}
	nc.sim.Progress()
}
