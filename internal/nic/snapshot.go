package nic

import (
	"mdworm/internal/ckpt"
)

// Checkpoint support. The NIC's mutable state is its injection queue and
// in-progress worms, software-forwarding timers, the stall window, and its
// counters; wiring and configuration are rebuilt from the run config.

// CollectState adds every message and worm the NIC holds to the checkpoint
// graph.
func (nc *NIC) CollectState(g *ckpt.Graph) {
	for _, m := range nc.sendQ {
		g.AddMessage(m)
	}
	g.AddWorm(nc.curWorm)
	g.AddWorm(nc.recvWorm)
	for _, t := range nc.tasks {
		g.AddMessage(t.msg)
	}
}

// EncodeState writes the NIC's mutable state.
func (nc *NIC) EncodeState(e *ckpt.Enc, g *ckpt.Graph) {
	e.Int(len(nc.sendQ))
	for _, m := range nc.sendQ {
		e.U64(g.MsgID(m))
	}
	e.Int(nc.overheadLeft)
	e.Bool(nc.overheadSpent)
	e.U64(g.WormID(nc.curWorm))
	e.Int(nc.curIdx)
	e.U64(g.WormID(nc.recvWorm))
	e.Int(nc.recvGot)
	e.Int(len(nc.tasks))
	for _, t := range nc.tasks {
		e.U64(g.MsgID(t.msg))
		e.I64(t.readyAt)
	}
	e.I64(nc.stallUntil)

	e.I64(nc.stats.MessagesSent)
	e.I64(nc.stats.MessagesDelivered)
	e.I64(nc.stats.MessagesDropped)
	e.I64(nc.stats.FlitsInjected)
	e.I64(nc.stats.FlitsEjected)
	e.I64(nc.stats.ForwardedMsgs)
	e.Int(nc.stats.SendQueueMax)
	e.I64(nc.stats.OverheadCycles)
}

// DecodeState restores the NIC over a freshly constructed twin.
func (nc *NIC) DecodeState(d *ckpt.Dec, g *ckpt.Graph) {
	nq := d.Count(8)
	nc.sendQ = nil
	for i := 0; i < nq && d.Err() == nil; i++ {
		m := g.MsgAt(d, d.U64())
		if d.Err() != nil {
			return
		}
		if m == nil {
			d.Fail("%s: nil queued message", nc.Name())
			return
		}
		nc.sendQ = append(nc.sendQ, m)
	}
	nc.overheadLeft = d.Int()
	nc.overheadSpent = d.Bool()
	nc.curWorm = g.WormAt(d, d.U64())
	nc.curIdx = d.Int()
	nc.recvWorm = g.WormAt(d, d.U64())
	nc.recvGot = d.Int()
	nt := d.Count(16)
	if d.Err() != nil {
		return
	}
	nc.tasks = nil
	for i := 0; i < nt; i++ {
		t := fwdTask{msg: g.MsgAt(d, d.U64()), readyAt: d.I64()}
		if d.Err() != nil {
			return
		}
		if t.msg == nil {
			d.Fail("%s: nil forwarding task", nc.Name())
			return
		}
		nc.tasks = append(nc.tasks, t)
	}
	nc.stallUntil = d.I64()

	nc.stats.MessagesSent = d.I64()
	nc.stats.MessagesDelivered = d.I64()
	nc.stats.MessagesDropped = d.I64()
	nc.stats.FlitsInjected = d.I64()
	nc.stats.FlitsEjected = d.I64()
	nc.stats.ForwardedMsgs = d.I64()
	nc.stats.SendQueueMax = d.Int()
	nc.stats.OverheadCycles = d.I64()
	if d.Err() != nil {
		return
	}
	if nc.curWorm != nil && (nc.curIdx < 0 || nc.curIdx >= nc.curWorm.Len()) {
		d.Fail("%s: injection index %d out of range", nc.Name(), nc.curIdx)
		return
	}
	if nc.recvWorm != nil && (nc.recvGot < 0 || nc.recvGot > nc.recvWorm.Len()) {
		d.Fail("%s: reception count %d out of range", nc.Name(), nc.recvGot)
	}
}
