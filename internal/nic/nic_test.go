package nic

import (
	"testing"

	"mdworm/internal/bitset"
	"mdworm/internal/engine"
	"mdworm/internal/flit"
)

// testFactory builds messages with a 1-flit header.
type testFactory struct{ ids *engine.IDGen }

func (f *testFactory) NewMessage(src int, dests []int, class flit.Class, payload int,
	op *flit.Op, fwd *flit.ForwardStep, now int64) *flit.Message {
	return &flit.Message{
		ID: f.ids.Next(), Src: src, Dests: dests, Class: class,
		PayloadFlits: payload, HeaderFlits: 1, Created: now, Op: op, Forward: fwd,
	}
}

// wire collects everything a NIC sends and can feed worms back in.
type wire struct {
	link  *engine.Link
	flits []flit.Ref
	times []int64
}

func (w *wire) Name() string   { return "wire" }
func (w *wire) Quiesced() bool { return true }
func (w *wire) Step(now int64) {
	if _, ok := w.link.Arrived(now); ok {
		r := w.link.TakeArrived(now)
		w.link.ReturnCredit(now, 1)
		w.flits = append(w.flits, r)
		w.times = append(w.times, now)
	}
}

type env struct {
	sim       *engine.Simulation
	ids       engine.IDGen
	nic       *NIC
	inject    *engine.Link // NIC -> network
	eject     *engine.Link // network -> NIC
	out       *wire
	delivered []*flit.Message
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	e := &env{sim: engine.NewSimulation(10_000)}
	e.inject = e.sim.NewLink("inj", 1, 16)
	e.eject = e.sim.NewLink("ej", 1, cfg.RecvFIFOFlits)
	e.out = &wire{link: e.inject}
	fac := &testFactory{ids: &e.ids}
	e.nic = New(cfg, 3, 16, e.inject, e.eject, &e.ids, e.sim, fac,
		func(m *flit.Message, at *NIC, now int64) {
			e.delivered = append(e.delivered, m)
		})
	e.sim.AddComponent(e.nic)
	e.sim.AddComponent(e.out)
	return e
}

func (e *env) newMsg(dests []int, payload int, op *flit.Op, fwd *flit.ForwardStep) *flit.Message {
	fac := &testFactory{ids: &e.ids}
	class := flit.ClassUnicast
	if len(dests) > 1 {
		class = flit.ClassMulticast
	}
	return fac.NewMessage(3, dests, class, payload, op, fwd, e.sim.Now)
}

func TestInjectPaysSendOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendOverhead = 10
	e := newEnv(t, cfg)
	m := e.newMsg([]int{5}, 4, nil, nil)
	e.nic.Submit(m)
	if ok, err := e.sim.Drain(1000); !ok || err != nil {
		t.Fatalf("drain: %v %v", ok, err)
	}
	if len(e.out.flits) != m.Len() {
		t.Fatalf("injected %d flits, want %d", len(e.out.flits), m.Len())
	}
	// First flit cannot appear before the overhead has elapsed.
	if e.out.times[0] < 10 {
		t.Fatalf("first flit at %d, want >= 10", e.out.times[0])
	}
	if m.InjectedAt < 9 {
		t.Fatalf("InjectedAt = %d", m.InjectedAt)
	}
	st := e.nic.Stats()
	if st.MessagesSent != 1 || st.FlitsInjected != int64(m.Len()) || st.OverheadCycles != 10 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestZeroOverheadInjectsImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendOverhead = 0
	e := newEnv(t, cfg)
	e.nic.Submit(e.newMsg([]int{5}, 4, nil, nil))
	if ok, _ := e.sim.Drain(100); !ok {
		t.Fatal("drain")
	}
	if e.out.times[0] > 3 {
		t.Fatalf("first flit at %d with zero overhead", e.out.times[0])
	}
}

func TestInjectionSerializesMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SendOverhead = 5
	e := newEnv(t, cfg)
	m1 := e.newMsg([]int{5}, 4, nil, nil)
	m2 := e.newMsg([]int{6}, 4, nil, nil)
	e.nic.Submit(m1, m2)
	if ok, _ := e.sim.Drain(1000); !ok {
		t.Fatal("drain")
	}
	// All of m1's flits precede all of m2's.
	seen2 := false
	for _, r := range e.out.flits {
		if r.W.Msg == m2 {
			seen2 = true
		} else if seen2 {
			t.Fatal("interleaved messages on injection channel")
		}
	}
	// m2 pays its own overhead after m1's tail: m1 occupies the channel
	// for Len cycles starting at InjectedAt, then 5 overhead cycles elapse
	// (the last overlapping m2's first flit).
	if m2.InjectedAt < m1.InjectedAt+int64(m1.Len())+5-1 {
		t.Fatalf("m2 injected at %d, too early after m1 at %d", m2.InjectedAt, m1.InjectedAt)
	}
}

// feedWorm pushes a complete worm into the NIC's eject link.
func (e *env) feedWorm(t *testing.T, m *flit.Message) {
	t.Helper()
	w := &flit.Worm{ID: e.ids.Next(), Msg: m, Dests: bitset.FromSlice(16, []int{3})}
	for i := 0; i < w.Len(); i++ {
		for !e.eject.CanSend(e.sim.Now) {
			e.sim.Step()
		}
		e.eject.Send(e.sim.Now, flit.Ref{W: w, Idx: i})
		e.sim.Step()
	}
}

func TestReceiveDelivers(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	op := flit.NewOp(1, flit.ClassUnicast, 9, 1, 0)
	m := e.newMsg([]int{3}, 6, op, nil)
	m.Src = 9
	e.feedWorm(t, m)
	if ok, _ := e.sim.Drain(100); !ok {
		t.Fatal("drain")
	}
	if len(e.delivered) != 1 || e.delivered[0] != m {
		t.Fatalf("delivered %v", e.delivered)
	}
	if st := e.nic.Stats(); st.MessagesDelivered != 1 || st.FlitsEjected != int64(m.Len()) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForwardingAfterRecvOverhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecvOverhead = 20
	cfg.SendOverhead = 0
	e := newEnv(t, cfg)
	op := flit.NewOp(1, flit.ClassMulticast, 9, 4, 0)
	// Node 3 receives and must cover subtree {5, 7, 8}.
	m := e.newMsg([]int{3}, 6, op, &flit.ForwardStep{Subtree: []int{5, 7, 8}})
	m.Src = 9
	e.feedWorm(t, m)
	recvAt := e.sim.Now
	if ok, _ := e.sim.Drain(2000); !ok {
		t.Fatal("drain")
	}
	st := e.nic.Stats()
	if st.ForwardedMsgs != 2 {
		t.Fatalf("forwarded %d messages, want 2 (binomial split of 3)", st.ForwardedMsgs)
	}
	// Nothing leaves before the receive overhead has elapsed.
	if e.out.times[0] < recvAt+20-2 {
		t.Fatalf("forward began at %d, before receive overhead from %d", e.out.times[0], recvAt)
	}
	// Forwarded messages carry the same op and unicast class.
	for _, r := range e.out.flits {
		if r.W.Msg.Op != op || r.W.Msg.Class != flit.ClassUnicast {
			t.Fatal("forwarded message lost op or class")
		}
	}
}

func TestQuiesced(t *testing.T) {
	e := newEnv(t, DefaultConfig())
	if !e.nic.Quiesced() {
		t.Fatal("fresh NIC not quiesced")
	}
	e.nic.Submit(e.newMsg([]int{5}, 4, nil, nil))
	if e.nic.Quiesced() {
		t.Fatal("NIC with queued message quiesced")
	}
	if ok, _ := e.sim.Drain(1000); !ok {
		t.Fatal("drain")
	}
	if !e.nic.Quiesced() {
		t.Fatal("NIC not quiesced after drain")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.SendOverhead = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	bad = DefaultConfig()
	bad.RecvFIFOFlits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero receive FIFO accepted")
	}
}
