package flit

// Arenas batch-allocate the model's short-header objects in contiguous
// chunks. A branching multicast forks a worm per output port at every
// switch, so worm headers dominate the allocation profile of a loaded run;
// carving them 64 at a time replaces per-fork heap allocations with a
// pointer bump and keeps sibling worms cache-adjacent. Objects are never
// reused — retired worms and ops are reclaimed by the garbage collector
// chunk by chunk — so arena allocation cannot alias live state, and
// checkpoint object graphs (keyed by pointer identity) are unaffected.

const arenaChunk = 64

// WormArena hands out Worm structs from contiguous chunks.
type WormArena struct {
	chunk []Worm
}

// New returns a zeroed Worm carved from the current chunk.
func (a *WormArena) New() *Worm {
	if len(a.chunk) == 0 {
		a.chunk = make([]Worm, arenaChunk)
	}
	w := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return w
}

// OpArena hands out Op structs from contiguous chunks.
type OpArena struct {
	chunk []Op
}

// New returns an Op initialized exactly like NewOp, carved from the
// current chunk.
func (a *OpArena) New(id uint64, class Class, src, numDests int, created int64) *Op {
	if len(a.chunk) == 0 {
		a.chunk = make([]Op, arenaChunk)
	}
	op := &a.chunk[0]
	a.chunk = a.chunk[1:]
	*op = Op{
		ID:        id,
		Class:     class,
		Src:       src,
		NumDests:  numDests,
		Created:   created,
		remaining: numDests,
	}
	return op
}
