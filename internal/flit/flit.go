// Package flit defines the wire-level and message-level data units of the
// simulator: messages as issued by hosts, worms as they travel hop by hop
// (a multidestination worm forks into branch worms inside switches), flit
// references as they occupy link and buffer slots, and collective-operation
// bookkeeping used to compute last-arrival multicast latency.
package flit

import (
	"fmt"

	"mdworm/internal/bitset"
)

// Class distinguishes unicast from multidestination traffic for statistics
// and for switch data paths.
type Class uint8

const (
	// ClassUnicast is a single-destination message.
	ClassUnicast Class = iota
	// ClassMulticast is a multidestination message.
	ClassMulticast
	// ClassBarrier is a single-flit barrier token, combined inside
	// switches rather than routed (the in-switch barrier support of the
	// authors' companion work). Switches consume ascending tokens,
	// emit one combined token up the designated spanning tree, and
	// broadcast release tokens back down.
	ClassBarrier
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassUnicast:
		return "unicast"
	case ClassMulticast:
		return "multicast"
	case ClassBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Message is one network transaction issued by a host: a header plus payload
// that is delivered to one or more destinations. Software multicast schemes
// issue several unicast Messages per collective operation; hardware schemes
// issue one multidestination Message.
type Message struct {
	ID           uint64
	Src          int
	Dests        []int // final destination processors of this message
	Class        Class
	PayloadFlits int
	HeaderFlits  int

	// Created is the cycle the message was handed to the source NIC.
	Created int64
	// InjectedAt is the cycle the first flit entered the injection link
	// (after any software send overhead). Zero until injection.
	InjectedAt int64

	// Op ties the message to the collective operation it serves; every
	// message belongs to exactly one Op (unicast traffic gets a
	// degenerate single-destination Op).
	Op *Op

	// Forward, when non-nil, is consulted by the receiving NIC of a
	// software-multicast message to continue the distribution tree.
	Forward *ForwardStep
}

// Len returns the total number of flits of the message on the wire.
func (m *Message) Len() int { return m.HeaderFlits + m.PayloadFlits }

// ForwardStep describes the remaining work a software-multicast recipient
// must perform: the subtree of destinations it becomes responsible for.
type ForwardStep struct {
	// Subtree lists the destinations (excluding the receiver itself) that
	// the receiver must cover with further sends.
	Subtree []int
}

// Op aggregates delivery of a collective operation (or a single unicast).
// The simulator records one latency sample per Op using the last-arrival
// definition of Nupairoj and Ni: latency is measured from Op creation to the
// arrival of the tail flit at the last destination.
type Op struct {
	ID       uint64
	Class    Class
	Src      int
	NumDests int
	Created  int64
	// Phases is the number of communication phases used (1 for hardware
	// multicast and unicast; ceil(log2(d+1)) for binomial software trees).
	Phases int

	remaining    int
	FirstArrival int64
	LastArrival  int64
	SumArrival   int64 // sum of per-destination arrival cycles, for mean-arrival metric
	MessagesSent int   // total messages injected on behalf of this op
	// Dropped counts destinations accounted as undeliverable because of an
	// injected fault (dead link, dead NIC attachment). A partially dropped
	// op still completes — delivered and dropped destinations sum to
	// NumDests — but yields no latency sample.
	Dropped int
}

// NewOp creates an Op expecting delivery at numDests destinations.
func NewOp(id uint64, class Class, src, numDests int, created int64) *Op {
	return &Op{
		ID:        id,
		Class:     class,
		Src:       src,
		NumDests:  numDests,
		Created:   created,
		remaining: numDests,
	}
}

// Remaining returns the number of destinations that have not yet received
// their copy.
func (o *Op) Remaining() int { return o.remaining }

// Done reports whether every destination has received its copy.
func (o *Op) Done() bool { return o.remaining == 0 }

// Deliver records the arrival of the tail flit at one destination and
// returns true when this completes the operation.
func (o *Op) Deliver(now int64) bool {
	if o.remaining <= 0 {
		panic(fmt.Sprintf("flit: op %d over-delivered", o.ID))
	}
	o.remaining--
	if o.FirstArrival == 0 || now < o.FirstArrival {
		o.FirstArrival = now
	}
	if now > o.LastArrival {
		o.LastArrival = now
	}
	o.SumArrival += now
	return o.remaining == 0
}

// DropN accounts n destinations of the op as dropped rather than delivered
// and returns true when this completes the operation. n <= 0 is a no-op
// returning false; dropping more destinations than remain is the same
// accounting bug as over-delivery and panics.
func (o *Op) DropN(n int) bool {
	if n <= 0 {
		return false
	}
	if n > o.remaining {
		panic(fmt.Sprintf("flit: op %d dropping %d destinations with %d remaining", o.ID, n, o.remaining))
	}
	o.remaining -= n
	o.Dropped += n
	return o.remaining == 0
}

// DropCost returns the number of op destinations lost when worm w abandons
// coverage of the dropped processor set: the dropped destinations themselves
// plus, for a software-multicast message, the forwarding subtree its
// receiver would have continued.
func DropCost(w *Worm, dropped bitset.Set) int {
	n := dropped.Count()
	if n == 0 {
		return 0
	}
	m := w.Msg
	if m.Forward != nil && len(m.Dests) > 0 && dropped.Has(m.Dests[0]) {
		n += len(m.Forward.Subtree)
	}
	return n
}

// LastLatency returns the last-arrival latency of a completed op.
func (o *Op) LastLatency() int64 { return o.LastArrival - o.Created }

// MeanLatency returns the mean per-destination latency of a completed op.
func (o *Op) MeanLatency() float64 {
	if o.NumDests == 0 {
		return 0
	}
	return float64(o.SumArrival)/float64(o.NumDests) - float64(o.Created)
}

// Worm is one hop-by-hop instance of a message. A multidestination worm that
// replicates inside a switch forks into child worms, each carrying the
// destination subset reachable through its branch. All worms of a message
// share the same flit count.
type Worm struct {
	ID  uint64
	Msg *Message
	// Dests is the set of destinations this branch must still cover.
	Dests bitset.Set
	// GoingUp records the BMIN routing phase: true while the worm is
	// ascending toward the least-common-ancestor stage. Once a worm turns
	// downward it never ascends again (up*/down* conformance).
	GoingUp bool
	// Hops counts switch traversals of this branch (root worm inherits 0).
	Hops int

	// cachedLen memoizes Msg.Len()+1 (0 = not yet computed): Len sits on
	// the per-flit hot path of every switch model, and reading it from the
	// worm itself spares the Message pointer chase.
	cachedLen int32
}

// Len returns the total flit count of the worm, header included.
func (w *Worm) Len() int {
	if w.cachedLen == 0 {
		w.cachedLen = int32(w.Msg.Len()) + 1
	}
	return int(w.cachedLen) - 1
}

// HeaderFlits returns the number of leading flits that carry routing
// information.
func (w *Worm) HeaderFlits() int { return w.Msg.HeaderFlits }

// Ref identifies one flit of one worm as it sits in a link slot or buffer.
type Ref struct {
	W   *Worm
	Idx int
}

// Head reports whether this is the first flit of the worm.
func (r Ref) Head() bool { return r.Idx == 0 }

// Tail reports whether this is the last flit of the worm.
func (r Ref) Tail() bool { return r.Idx == r.W.Len()-1 }

// String renders a flit reference for traces and test failures.
func (r Ref) String() string {
	kind := "d"
	if r.Idx < r.W.HeaderFlits() {
		kind = "h"
	}
	if r.Tail() {
		kind = "t"
	}
	return fmt.Sprintf("w%d[%s%d/%d]", r.W.ID, kind, r.Idx, r.W.Len())
}
