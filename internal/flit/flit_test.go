package flit

import (
	"testing"

	"mdworm/internal/bitset"
)

func TestClassString(t *testing.T) {
	if ClassUnicast.String() != "unicast" || ClassMulticast.String() != "multicast" {
		t.Fatal("class names wrong")
	}
}

func TestMessageLen(t *testing.T) {
	m := &Message{PayloadFlits: 64, HeaderFlits: 4}
	if m.Len() != 68 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestOpDeliveryAccounting(t *testing.T) {
	op := NewOp(1, ClassMulticast, 0, 3, 100)
	if op.Done() || op.Remaining() != 3 {
		t.Fatal("fresh op wrong state")
	}
	if op.Deliver(150) {
		t.Fatal("completed after first delivery")
	}
	if op.Deliver(130) {
		t.Fatal("completed after second delivery")
	}
	if !op.Deliver(200) {
		t.Fatal("not completed after last delivery")
	}
	if op.FirstArrival != 130 || op.LastArrival != 200 {
		t.Fatalf("arrival range [%d,%d]", op.FirstArrival, op.LastArrival)
	}
	if op.LastLatency() != 100 {
		t.Fatalf("last latency = %d, want 100", op.LastLatency())
	}
	want := (150.0+130.0+200.0)/3.0 - 100.0
	if got := op.MeanLatency(); got != want {
		t.Fatalf("mean latency = %g, want %g", got, want)
	}
}

func TestOpOverDeliveryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	op := NewOp(1, ClassUnicast, 0, 1, 0)
	op.Deliver(1)
	op.Deliver(2)
}

func TestRefHeadTail(t *testing.T) {
	m := &Message{PayloadFlits: 3, HeaderFlits: 2}
	w := &Worm{ID: 7, Msg: m}
	if w.Len() != 5 || w.HeaderFlits() != 2 {
		t.Fatalf("worm sizes wrong: %d %d", w.Len(), w.HeaderFlits())
	}
	head := Ref{W: w, Idx: 0}
	tail := Ref{W: w, Idx: 4}
	mid := Ref{W: w, Idx: 2}
	if !head.Head() || head.Tail() {
		t.Fatal("head flags wrong")
	}
	if tail.Head() || !tail.Tail() {
		t.Fatal("tail flags wrong")
	}
	if mid.Head() || mid.Tail() {
		t.Fatal("mid flags wrong")
	}
	if head.String() == "" || tail.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWormDests(t *testing.T) {
	m := &Message{PayloadFlits: 1, HeaderFlits: 1}
	d := bitset.FromSlice(8, []int{1, 5})
	w := &Worm{ID: 1, Msg: m, Dests: d}
	if !w.Dests.Has(1) || !w.Dests.Has(5) || w.Dests.Count() != 2 {
		t.Fatal("dest set wrong")
	}
}
