package flit

import (
	"fmt"

	"mdworm/internal/bitset"
)

// Encoding selects the multidestination header encoding scheme. The choice
// determines header size (serialization latency) and which destination sets
// a single worm can cover.
type Encoding uint8

const (
	// EncUnicast is the single-destination header: one flit carrying the
	// destination identifier.
	EncUnicast Encoding = iota
	// EncBitString is the N-bit bit-string encoding: bit i set means
	// processor i is a destination. Covers arbitrary sets in one phase at
	// the cost of ceil(N/flitBits) header flits.
	EncBitString
	// EncMultiport is the multiport encoding of Sivaram/Panda/Stunkel:
	// per-stage output-port bitmaps on the downward path. Compact headers
	// and trivial decode logic, but a single worm covers only
	// digit-product destination sets, so arbitrary multicasts may need
	// several worms (phases).
	EncMultiport
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncUnicast:
		return "unicast"
	case EncBitString:
		return "bitstring"
	case EncMultiport:
		return "multiport"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// HeaderFlits returns the number of header flits a worm needs under the
// given encoding for a system of n processors built as a BMIN with the given
// number of stages and down-ports per switch (arity), with flitBits payload
// bits per flit. The result is always at least 1.
func HeaderFlits(e Encoding, n, stages, arity, flitBits int) int {
	if flitBits <= 0 {
		panic("flit: flitBits must be positive")
	}
	switch e {
	case EncUnicast:
		// Destination id plus routing control comfortably fits one flit
		// for the system sizes studied (<= 64K nodes at 16-bit flits).
		return ceilDiv(bitsFor(n)+2, flitBits)
	case EncBitString:
		return ceilDiv(n, flitBits)
	case EncMultiport:
		// One arity-wide bitmap per stage of the downward path.
		return ceilDiv(stages*arity, flitBits)
	default:
		panic(fmt.Sprintf("flit: unknown encoding %d", e))
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func bitsFor(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// EncodeBitString serializes a destination set into per-flit payload words,
// flitBits bits per flit, least-significant destinations first. The result
// has exactly ceil(set.Cap()/flitBits) entries.
func EncodeBitString(dests bitset.Set, flitBits int) []uint64 {
	if flitBits <= 0 || flitBits > 64 {
		panic("flit: flitBits must be in (0,64]")
	}
	n := dests.Cap()
	out := make([]uint64, ceilDiv(n, flitBits))
	dests.ForEach(func(d int) {
		out[d/flitBits] |= 1 << uint(d%flitBits)
	})
	return out
}

// DecodeBitString reverses EncodeBitString for a system of n processors.
func DecodeBitString(payload []uint64, n, flitBits int) bitset.Set {
	if flitBits <= 0 || flitBits > 64 {
		panic("flit: flitBits must be in (0,64]")
	}
	s := bitset.New(n)
	for fi, w := range payload {
		for b := 0; b < flitBits; b++ {
			if w&(1<<uint(b)) != 0 {
				d := fi*flitBits + b
				if d < n {
					s.Add(d)
				}
			}
		}
	}
	return s
}

// MultiportHeader is the decoded form of a multiport-encoded header: for
// each stage of the downward path (index 0 = the stage adjacent to the
// processors), a bitmap over the switch's down ports that copies of the
// worm must take.
type MultiportHeader struct {
	// PortMask[s] has bit j set if, at a stage-s switch on the downward
	// path, the worm replicates onto down port j.
	PortMask []uint16
}

// EncodeMultiport packs the header into per-flit payload words with
// arity bits per stage, stage 0 first.
func (h MultiportHeader) EncodeMultiport(arity, flitBits int) []uint64 {
	if flitBits <= 0 || flitBits > 64 {
		panic("flit: flitBits must be in (0,64]")
	}
	total := len(h.PortMask) * arity
	out := make([]uint64, max(1, ceilDiv(total, flitBits)))
	for s, m := range h.PortMask {
		for j := 0; j < arity; j++ {
			if m&(1<<uint(j)) != 0 {
				bit := s*arity + j
				out[bit/flitBits] |= 1 << uint(bit%flitBits)
			}
		}
	}
	return out
}

// DecodeMultiport reverses EncodeMultiport for the given stage count.
func DecodeMultiport(payload []uint64, stages, arity, flitBits int) MultiportHeader {
	h := MultiportHeader{PortMask: make([]uint16, stages)}
	for s := 0; s < stages; s++ {
		for j := 0; j < arity; j++ {
			bit := s*arity + j
			wi := bit / flitBits
			if wi < len(payload) && payload[wi]&(1<<uint(bit%flitBits)) != 0 {
				h.PortMask[s] |= 1 << uint(j)
			}
		}
	}
	return h
}
