package flit

import (
	"testing"
	"testing/quick"

	"mdworm/internal/bitset"
)

func TestHeaderFlitsSizes(t *testing.T) {
	cases := []struct {
		enc                     Encoding
		n, stages, arity, fbits int
		want                    int
	}{
		{EncUnicast, 64, 3, 4, 16, 1},
		{EncUnicast, 65536, 8, 4, 16, 2}, // 16 id bits + control overflow one flit
		{EncBitString, 16, 2, 4, 16, 1},
		{EncBitString, 64, 3, 4, 16, 4},
		{EncBitString, 256, 4, 4, 16, 16},
		{EncBitString, 64, 3, 4, 8, 8},
		{EncMultiport, 64, 3, 4, 16, 1},
		{EncMultiport, 256, 4, 4, 16, 1},
		{EncMultiport, 256, 4, 4, 8, 2},
	}
	for _, c := range cases {
		got := HeaderFlits(c.enc, c.n, c.stages, c.arity, c.fbits)
		if got != c.want {
			t.Errorf("HeaderFlits(%v,n=%d,st=%d,ar=%d,fb=%d) = %d, want %d",
				c.enc, c.n, c.stages, c.arity, c.fbits, got, c.want)
		}
	}
}

func TestEncodingString(t *testing.T) {
	for e, want := range map[Encoding]string{
		EncUnicast: "unicast", EncBitString: "bitstring", EncMultiport: "multiport",
	} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestBitStringRoundTripFixed(t *testing.T) {
	dests := bitset.FromSlice(64, []int{0, 15, 16, 31, 32, 63})
	payload := EncodeBitString(dests, 16)
	if len(payload) != 4 {
		t.Fatalf("payload length %d, want 4", len(payload))
	}
	back := DecodeBitString(payload, 64, 16)
	if !back.Equal(dests) {
		t.Fatalf("round trip: got %v, want %v", back, dests)
	}
}

// Property: bit-string encoding round-trips for any destination set, system
// size, and flit width.
func TestBitStringRoundTripQuick(t *testing.T) {
	f := func(raw []uint16, nSeed uint16, fbSeed uint8) bool {
		n := int(nSeed)%600 + 1
		fb := int(fbSeed)%64 + 1
		dests := bitset.New(n)
		for _, r := range raw {
			dests.Add(int(r) % n)
		}
		payload := EncodeBitString(dests, fb)
		if len(payload) != (n+fb-1)/fb {
			return false
		}
		return DecodeBitString(payload, n, fb).Equal(dests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiportRoundTripFixed(t *testing.T) {
	h := MultiportHeader{PortMask: []uint16{0b1010, 0b0001, 0b1111}}
	payload := h.EncodeMultiport(4, 16)
	back := DecodeMultiport(payload, 3, 4, 16)
	for s := range h.PortMask {
		if back.PortMask[s] != h.PortMask[s] {
			t.Fatalf("stage %d: got %04b, want %04b", s, back.PortMask[s], h.PortMask[s])
		}
	}
}

// Property: multiport headers round-trip for any stage count, arity, and
// flit width.
func TestMultiportRoundTripQuick(t *testing.T) {
	f := func(masks []uint16, aritySeed, fbSeed uint8) bool {
		arity := int(aritySeed)%15 + 2
		fb := int(fbSeed)%64 + 1
		if len(masks) > 8 {
			masks = masks[:8]
		}
		h := MultiportHeader{PortMask: make([]uint16, len(masks))}
		for i, m := range masks {
			h.PortMask[i] = m & ((1 << uint(arity)) - 1)
		}
		payload := h.EncodeMultiport(arity, fb)
		back := DecodeMultiport(payload, len(masks), arity, fb)
		for i := range h.PortMask {
			if back.PortMask[i] != h.PortMask[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBitStringIgnoresOutOfRange(t *testing.T) {
	// Encode for n=10 at 16-bit flits: 1 word; set bits beyond n.
	payload := []uint64{0xFFFF}
	got := DecodeBitString(payload, 10, 16)
	if got.Count() != 10 {
		t.Fatalf("decoded %d members, want 10 (bits >= n dropped)", got.Count())
	}
}

func TestBadFlitBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EncodeBitString(bitset.New(4), 0)
}
