package flit

// RestoreOp rebuilds an Op from checkpointed state, including the private
// remaining-destination count that NewOp derives and Deliver/DropN mutate.
// It exists so the checkpoint codec can live outside this package without
// exporting the field.
func RestoreOp(id uint64, class Class, src, numDests int, created int64, phases, remaining int,
	firstArrival, lastArrival, sumArrival int64, messagesSent, dropped int) *Op {
	return &Op{
		ID:           id,
		Class:        class,
		Src:          src,
		NumDests:     numDests,
		Created:      created,
		Phases:       phases,
		remaining:    remaining,
		FirstArrival: firstArrival,
		LastArrival:  lastArrival,
		SumArrival:   sumArrival,
		MessagesSent: messagesSent,
		Dropped:      dropped,
	}
}
