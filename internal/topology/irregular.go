package topology

import (
	"fmt"

	"mdworm/internal/engine"
)

// TreeSpec describes an irregular, NOW-style switch-based network: switches
// of varying radix connected as a random tree, each hosting some processors.
// Such networks (Autonet-class clusters of workstations) are the paper's
// third target topology; routing follows the up*/down* orientation toward
// the tree root, which is exactly the structure the multidestination worm
// machinery needs (disjoint per-port downward reach, a single parent per
// switch).
type TreeSpec struct {
	// Switches is the number of switching elements (>= 1).
	Switches int
	// MinHosts and MaxHosts bound the processors attached per switch
	// (drawn uniformly). Leaf switches always get at least one host.
	MinHosts, MaxHosts int
	// MaxChildren bounds the child switches per switch.
	MaxChildren int
	// Seed drives the random structure.
	Seed uint64
}

// Validate checks the spec.
func (s TreeSpec) Validate() error {
	switch {
	case s.Switches < 1:
		return fmt.Errorf("topology: tree needs >= 1 switch")
	case s.MinHosts < 0 || s.MaxHosts < s.MinHosts:
		return fmt.Errorf("topology: bad host range [%d,%d]", s.MinHosts, s.MaxHosts)
	case s.MaxChildren < 1 && s.Switches > 1:
		return fmt.Errorf("topology: MaxChildren must be >= 1 for multi-switch trees")
	}
	return nil
}

// NewRandomTree builds an irregular network per the spec. Switch 0 is the
// root of the up*/down* orientation. Every switch gets: one up port toward
// its parent (none for the root), one down port per child switch, and one
// down port per attached host.
func NewRandomTree(spec TreeSpec) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := engine.NewRNG(spec.Seed ^ 0x7ee5)

	// Random tree shape: parent of switch i (> 0) is a uniform pick among
	// switches with spare child slots.
	parent := make([]int, spec.Switches)
	childCount := make([]int, spec.Switches)
	parent[0] = -1
	for i := 1; i < spec.Switches; i++ {
		var cands []int
		for j := 0; j < i; j++ {
			if childCount[j] < spec.MaxChildren {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("topology: MaxChildren %d too small for %d switches",
				spec.MaxChildren, spec.Switches)
		}
		p := cands[rng.Intn(len(cands))]
		parent[i] = p
		childCount[p]++
	}

	// Hosts per switch; leaves always get at least one so the descending
	// direction grounds at consumers everywhere.
	hosts := make([]int, spec.Switches)
	total := 0
	for i := range hosts {
		span := spec.MaxHosts - spec.MinHosts + 1
		hosts[i] = spec.MinHosts + rng.Intn(span)
		if childCount[i] == 0 && hosts[i] == 0 {
			hosts[i] = 1
		}
		total += hosts[i]
	}
	if total == 0 {
		hosts[0] = 1
		total = 1
	}

	net := &Network{
		N:          total,
		Kary:       false,
		Switches:   make([]*Switch, spec.Switches),
		procAttach: make([]attach, total),
	}

	// Build switches: down ports = child links then host links; one up port.
	childPort := make(map[[2]int]int) // (parent, child) -> parent's port number
	for i := 0; i < spec.Switches; i++ {
		nPorts := childCount[i] + hosts[i]
		if parent[i] >= 0 {
			nPorts++
		}
		sw := &Switch{ID: i, Stage: -1, Pos: i, Ports: make([]Port, 0, nPorts)}
		net.Switches[i] = sw
	}
	// Child down ports, in child id order for determinism.
	for c := 1; c < spec.Switches; c++ {
		p := parent[c]
		sw := net.Switches[p]
		childPort[[2]int{p, c}] = len(sw.Ports)
		sw.Ports = append(sw.Ports, Port{Kind: Down, Index: len(sw.Ports), PeerSwitch: -1, PeerPort: -1, Proc: -1})
	}
	// Host down ports.
	proc := 0
	for i := 0; i < spec.Switches; i++ {
		sw := net.Switches[i]
		for h := 0; h < hosts[i]; h++ {
			pn := len(sw.Ports)
			sw.Ports = append(sw.Ports, Port{Kind: Down, Index: pn, PeerSwitch: -1, PeerPort: -1, Proc: proc})
			net.procAttach[proc] = attach{sw: i, port: pn}
			proc++
		}
	}
	// Up ports and wiring to parents.
	for c := 1; c < spec.Switches; c++ {
		child := net.Switches[c]
		up := len(child.Ports)
		child.Ports = append(child.Ports, Port{Kind: Up, Index: 0, PeerSwitch: -1, PeerPort: -1, Proc: -1})
		pp := childPort[[2]int{parent[c], c}]
		par := net.Switches[parent[c]]
		child.Ports[up].PeerSwitch = par.ID
		child.Ports[up].PeerPort = pp
		par.Ports[pp].PeerSwitch = c
		par.Ports[pp].PeerPort = up
	}
	// Stage = height above the deepest leaf is not meaningful here; record
	// depth from the root for diagnostics and set Stages to the tree depth
	// (used only as a route-length bound).
	depth := make([]int, spec.Switches)
	maxDepth := 0
	for i := 1; i < spec.Switches; i++ {
		depth[i] = depth[parent[i]] + 1
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	for i, sw := range net.Switches {
		sw.Stage = maxDepth - depth[i] // root has the highest stage number
	}
	net.Stages = maxDepth + 1
	net.Arity = 0

	for _, sw := range net.Switches {
		sw.indexPorts()
	}
	net.computeReach()
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
