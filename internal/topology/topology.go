// Package topology builds and validates the switch fabric: bidirectional
// multistage interconnection networks (BMINs) constructed as k-ary n-trees
// of fixed-radix switches, as used by the IBM SP2-class systems the paper
// models. The package is purely structural — it describes switches, ports,
// wiring, and per-port downward reachability; the simulator instantiates
// links and switch microarchitectures on top of it.
package topology

import (
	"fmt"

	"mdworm/internal/bitset"
)

// PortKind distinguishes ports that face the processors (Down) from ports
// that face the next switch stage (Up).
type PortKind uint8

const (
	// Down ports lead toward the processors.
	Down PortKind = iota
	// Up ports lead toward higher stages (the tree roots).
	Up
)

// String names the port kind.
func (k PortKind) String() string {
	if k == Down {
		return "down"
	}
	return "up"
}

// Port describes one bidirectional switch port and what it is wired to.
// Exactly one of the peer fields is meaningful: stage-0 down ports connect
// to a processor (Proc >= 0); all other connected ports name a peer switch
// and port. Top-stage up ports are unconnected (PeerSwitch == -1, Proc == -1).
type Port struct {
	Kind  PortKind
	Index int // index within its kind (0..arity-1)

	PeerSwitch int // peer switch id, or -1
	PeerPort   int // port number on the peer switch, or -1
	Proc       int // processor id for stage-0 down ports, else -1

	// Reach is the set of processors reachable by leaving through this
	// port and descending only. For down ports this is the subtree below;
	// for up ports it is the full downward reach of the parent switch.
	Reach bitset.Set
}

// Connected reports whether the port is wired to anything.
func (p *Port) Connected() bool { return p.Proc >= 0 || p.PeerSwitch >= 0 }

// Switch is one switching element. For k-ary trees, ports are numbered with
// down ports first (0..arity-1) and up ports after (arity..2*arity-1);
// irregular switches may have any mix, enumerated by DownPorts/UpPorts.
type Switch struct {
	ID    int
	Stage int
	Pos   int // index within the stage
	Ports []Port

	downPorts []int
	upPorts   []int
	reachAll  bitset.Set // union of down-port reaches (the subtree below)
}

// DownPorts returns the flat port numbers of the down (processor-facing)
// ports, ascending. The returned slice must not be modified.
func (s *Switch) DownPorts() []int { return s.downPorts }

// UpPorts returns the flat port numbers of the connected up ports,
// ascending. The returned slice must not be modified.
func (s *Switch) UpPorts() []int { return s.upPorts }

// indexPorts populates the down/up port indices from the Kind fields;
// unconnected up ports are excluded.
func (s *Switch) indexPorts() {
	s.downPorts = s.downPorts[:0]
	s.upPorts = s.upPorts[:0]
	for pn := range s.Ports {
		switch {
		case s.Ports[pn].Kind == Down:
			s.downPorts = append(s.downPorts, pn)
		case s.Ports[pn].Connected():
			s.upPorts = append(s.upPorts, pn)
		}
	}
}

// NumPorts returns the total port count.
func (s *Switch) NumPorts() int { return len(s.Ports) }

// ReachAll returns the set of processors reachable by descending from this
// switch. The returned set must not be modified.
func (s *Switch) ReachAll() bitset.Set { return s.reachAll }

// PortNum converts (kind, index) to the flat port number.
func (s *Switch) PortNum(kind PortKind, index int) int {
	arity := len(s.Ports) / 2
	if kind == Down {
		return index
	}
	return arity + index
}

// Network is a wired fabric of switches plus the processor attachment
// points. For the k-ary n-tree builder, N = arity^stages processors;
// irregular builders produce trees of varying-radix switches.
type Network struct {
	N      int // number of processors
	Arity  int // down (and up) ports per switch (k-ary trees only)
	Stages int // number of switch stages (k-ary trees only)
	// Kary reports whether the network is a regular k-ary n-tree (required
	// by the multiport encoding and the stage arithmetic).
	Kary bool
	// Switches holds every switch; id = index.
	Switches []*Switch
	// procAttach[p] locates the attachment switch and down port of
	// processor p.
	procAttach []attach
}

type attach struct {
	sw, port int
}

// ProcAttach returns the switch id and port number that processor p is
// wired to.
func (n *Network) ProcAttach(p int) (sw, port int) {
	a := n.procAttach[p]
	return a.sw, a.port
}

// SwitchAt returns the switch at (stage, pos).
func (n *Network) SwitchAt(stage, pos int) *Switch {
	return n.Switches[stage*n.switchesPerStage()+pos]
}

func (n *Network) switchesPerStage() int {
	return n.N / n.Arity
}

// NewKaryTree builds a k-ary n-tree BMIN with the given arity (down ports
// per switch; an 8-port SP-class switch has arity 4) and number of stages.
// The network has arity^stages processors and stages*(arity^(stages-1))
// switches. Stage s switch w (with w written in base-arity digits
// w[stages-2..0]) connects its up port j to the down port w_s of the
// stage-(s+1) switch whose digit s is replaced by j — the standard k-ary
// n-tree wiring, under which all parents of a switch have identical
// downward reach, so upward routing is freely adaptive.
func NewKaryTree(arity, stages int) (*Network, error) {
	if arity < 2 {
		return nil, fmt.Errorf("topology: arity must be >= 2, got %d", arity)
	}
	if stages < 1 {
		return nil, fmt.Errorf("topology: stages must be >= 1, got %d", stages)
	}
	n := 1
	for i := 0; i < stages; i++ {
		if n > 1<<20/arity {
			return nil, fmt.Errorf("topology: arity^stages too large")
		}
		n *= arity
	}
	perStage := n / arity
	net := &Network{
		N:          n,
		Arity:      arity,
		Stages:     stages,
		Kary:       true,
		Switches:   make([]*Switch, stages*perStage),
		procAttach: make([]attach, n),
	}
	for s := 0; s < stages; s++ {
		for w := 0; w < perStage; w++ {
			id := s*perStage + w
			sw := &Switch{ID: id, Stage: s, Pos: w, Ports: make([]Port, 2*arity)}
			for pt := range sw.Ports {
				sw.Ports[pt] = Port{PeerSwitch: -1, PeerPort: -1, Proc: -1}
				if pt < arity {
					sw.Ports[pt].Kind = Down
					sw.Ports[pt].Index = pt
				} else {
					sw.Ports[pt].Kind = Up
					sw.Ports[pt].Index = pt - arity
				}
			}
			net.Switches[id] = sw
		}
	}
	// Stage-0 down ports attach processors.
	for w := 0; w < perStage; w++ {
		sw := net.SwitchAt(0, w)
		for j := 0; j < arity; j++ {
			p := w*arity + j
			sw.Ports[j].Proc = p
			net.procAttach[p] = attach{sw: sw.ID, port: j}
		}
	}
	// Inter-stage wiring.
	for s := 0; s < stages-1; s++ {
		for w := 0; w < perStage; w++ {
			lo := net.SwitchAt(s, w)
			ws := digit(w, s, arity)
			for j := 0; j < arity; j++ {
				hiPos := setDigit(w, s, j, arity)
				hi := net.SwitchAt(s+1, hiPos)
				upPort := lo.PortNum(Up, j)
				downPort := hi.PortNum(Down, ws)
				lo.Ports[upPort].PeerSwitch = hi.ID
				lo.Ports[upPort].PeerPort = downPort
				hi.Ports[downPort].PeerSwitch = lo.ID
				hi.Ports[downPort].PeerPort = upPort
			}
		}
	}
	for _, sw := range net.Switches {
		sw.indexPorts()
	}
	net.computeReach()
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func digit(w, pos, base int) int {
	for i := 0; i < pos; i++ {
		w /= base
	}
	return w % base
}

func setDigit(w, pos, val, base int) int {
	scale := 1
	for i := 0; i < pos; i++ {
		scale *= base
	}
	old := (w / scale) % base
	return w + (val-old)*scale
}

// computeReach fills per-port downward reach sets, children before parents
// (memoized recursion over down-port peers; the down-link graph is acyclic
// by construction in both builders).
func (n *Network) computeReach() {
	done := make([]bool, len(n.Switches))
	var fill func(sw *Switch)
	fill = func(sw *Switch) {
		if done[sw.ID] {
			return
		}
		done[sw.ID] = true
		sw.reachAll = bitset.New(n.N)
		for _, pn := range sw.DownPorts() {
			pt := &sw.Ports[pn]
			pt.Reach = bitset.New(n.N)
			if pt.Proc >= 0 {
				pt.Reach.Add(pt.Proc)
			} else if pt.PeerSwitch >= 0 {
				fill(n.Switches[pt.PeerSwitch])
				pt.Reach.OrIn(n.Switches[pt.PeerSwitch].reachAll)
			}
			sw.reachAll.OrIn(pt.Reach)
		}
	}
	for _, sw := range n.Switches {
		fill(sw)
	}
	// Up-port reach: the parent's full downward reach.
	for _, sw := range n.Switches {
		for _, pn := range sw.UpPorts() {
			pt := &sw.Ports[pn]
			if pt.PeerSwitch >= 0 {
				pt.Reach = n.Switches[pt.PeerSwitch].reachAll
			}
		}
	}
}

// Validate checks the structural invariants the routing layer depends on:
// symmetric wiring, disjoint down-port reaches partitioning each switch's
// subtree, identical reach across all parents of a switch, and full
// top-stage coverage.
func (n *Network) Validate() error {
	for _, sw := range n.Switches {
		for pn := range sw.Ports {
			pt := &sw.Ports[pn]
			if pt.PeerSwitch >= 0 {
				peer := n.Switches[pt.PeerSwitch]
				back := &peer.Ports[pt.PeerPort]
				if back.PeerSwitch != sw.ID || back.PeerPort != pn {
					return fmt.Errorf("topology: asymmetric wiring at switch %d port %d", sw.ID, pn)
				}
				if pt.Kind == back.Kind {
					return fmt.Errorf("topology: switch %d port %d connects %s to %s", sw.ID, pn, pt.Kind, back.Kind)
				}
			}
		}
		// Down reaches must be pairwise disjoint and union to ReachAll.
		union := bitset.New(n.N)
		for _, pn := range sw.DownPorts() {
			r := sw.Ports[pn].Reach
			if union.Intersects(r) {
				return fmt.Errorf("topology: switch %d has overlapping down reaches", sw.ID)
			}
			union.OrIn(r)
		}
		if !union.Equal(sw.reachAll) {
			return fmt.Errorf("topology: switch %d reach union mismatch", sw.ID)
		}
		// All connected parents must expose the same reach (so upward
		// routing may pick any of them).
		var parentReach *bitset.Set
		for _, pn := range sw.UpPorts() {
			pt := &sw.Ports[pn]
			if pt.PeerSwitch < 0 {
				continue
			}
			r := n.Switches[pt.PeerSwitch].ReachAll()
			if parentReach == nil {
				parentReach = &r
			} else if !parentReach.Equal(r) {
				return fmt.Errorf("topology: switch %d has parents with differing reach", sw.ID)
			}
		}
		if parentReach != nil && !parentReach.Equal(sw.reachAll) {
			// Parents must reach a superset of the child subtree.
			for _, p := range sw.reachAll.Members() {
				if !parentReach.Has(p) {
					return fmt.Errorf("topology: switch %d parent reach misses processor %d", sw.ID, p)
				}
			}
		}
		// A switch with no way up must reach every processor (k-ary top
		// stage, or the root of an irregular tree).
		if len(sw.UpPorts()) == 0 && sw.ReachAll().Count() != n.N {
			return fmt.Errorf("topology: rootless switch %d reaches %d of %d processors",
				sw.ID, sw.ReachAll().Count(), n.N)
		}
	}
	return nil
}

// LCAStage returns the number of upward hops from src's switch to the
// nearest ancestor that reaches every member of dests by descending only.
func (n *Network) LCAStage(src int, dests bitset.Set) int {
	sw, _ := n.ProcAttach(src)
	cur := n.Switches[sw]
	for s := 0; ; s++ {
		// Word-wise subset test: no per-destination loop, no allocation.
		if dests.SubsetOf(cur.ReachAll()) {
			return s
		}
		ups := cur.UpPorts()
		if len(ups) == 0 {
			return s
		}
		// Any parent works: all have identical reach.
		cur = n.Switches[cur.Ports[ups[0]].PeerSwitch]
	}
}
