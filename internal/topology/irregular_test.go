package topology

import (
	"testing"
)

func TestRandomTreeInvariants(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		spec := TreeSpec{Switches: 12, MinHosts: 0, MaxHosts: 4, MaxChildren: 3, Seed: seed}
		net, err := NewRandomTree(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if net.Kary {
			t.Fatal("random tree marked kary")
		}
		if net.N < 1 {
			t.Fatal("no hosts")
		}
		// Validate already ran inside the builder; run again defensively.
		if err := net.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Exactly one root (no up ports) and it reaches everyone.
		roots := 0
		for _, sw := range net.Switches {
			if len(sw.UpPorts()) == 0 {
				roots++
				if sw.ReachAll().Count() != net.N {
					t.Fatalf("seed %d: root reaches %d of %d", seed, sw.ReachAll().Count(), net.N)
				}
			}
			if len(sw.UpPorts()) > 1 {
				t.Fatalf("seed %d: switch %d has %d parents", seed, sw.ID, len(sw.UpPorts()))
			}
		}
		if roots != 1 {
			t.Fatalf("seed %d: %d roots", seed, roots)
		}
		// Every processor attaches to exactly one port.
		for p := 0; p < net.N; p++ {
			sw, pn := net.ProcAttach(p)
			if net.Switches[sw].Ports[pn].Proc != p {
				t.Fatalf("seed %d: proc %d attach inconsistent", seed, p)
			}
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	spec := TreeSpec{Switches: 10, MinHosts: 1, MaxHosts: 3, MaxChildren: 4, Seed: 5}
	a, err := NewRandomTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRandomTree(spec)
	if a.N != b.N || len(a.Switches) != len(b.Switches) {
		t.Fatal("same seed, different shape")
	}
	for i := range a.Switches {
		if len(a.Switches[i].Ports) != len(b.Switches[i].Ports) {
			t.Fatalf("switch %d radix differs", i)
		}
	}
}

func TestRandomTreeSpecValidation(t *testing.T) {
	bad := TreeSpec{Switches: 0}
	if _, err := NewRandomTree(bad); err == nil {
		t.Error("zero switches accepted")
	}
	bad = TreeSpec{Switches: 5, MinHosts: 3, MaxHosts: 1, MaxChildren: 2}
	if _, err := NewRandomTree(bad); err == nil {
		t.Error("inverted host range accepted")
	}
	bad = TreeSpec{Switches: 5, MaxHosts: 1, MaxChildren: 0}
	if _, err := NewRandomTree(bad); err == nil {
		t.Error("multi-switch tree with no child slots accepted")
	}
}

func TestRandomTreeSingleSwitch(t *testing.T) {
	net, err := NewRandomTree(TreeSpec{Switches: 1, MinHosts: 4, MaxHosts: 4, MaxChildren: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net.N != 4 || len(net.Switches) != 1 {
		t.Fatalf("N=%d switches=%d", net.N, len(net.Switches))
	}
}

func TestRandomTreeLeavesHaveHosts(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		net, err := NewRandomTree(TreeSpec{Switches: 15, MinHosts: 0, MaxHosts: 2, MaxChildren: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range net.Switches {
			hasChildSwitch := false
			hasHost := false
			for _, pn := range sw.DownPorts() {
				if sw.Ports[pn].Proc >= 0 {
					hasHost = true
				}
				if sw.Ports[pn].PeerSwitch >= 0 {
					hasChildSwitch = true
				}
			}
			if !hasChildSwitch && !hasHost {
				t.Fatalf("seed %d: leaf switch %d has no hosts", seed, sw.ID)
			}
		}
	}
}
