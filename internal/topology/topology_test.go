package topology

import (
	"testing"

	"mdworm/internal/bitset"
)

func TestSizes(t *testing.T) {
	cases := []struct {
		arity, stages       int
		wantN, wantSwitches int
	}{
		{4, 1, 4, 1},
		{4, 2, 16, 8},
		{4, 3, 64, 48},
		{4, 4, 256, 256},
		{2, 3, 8, 12},
		{8, 2, 64, 16},
	}
	for _, c := range cases {
		net, err := NewKaryTree(c.arity, c.stages)
		if err != nil {
			t.Fatalf("NewKaryTree(%d,%d): %v", c.arity, c.stages, err)
		}
		if net.N != c.wantN || len(net.Switches) != c.wantSwitches {
			t.Errorf("arity=%d stages=%d: N=%d switches=%d, want %d/%d",
				c.arity, c.stages, net.N, len(net.Switches), c.wantN, c.wantSwitches)
		}
	}
}

func TestBadParams(t *testing.T) {
	if _, err := NewKaryTree(1, 3); err == nil {
		t.Error("arity 1 accepted")
	}
	if _, err := NewKaryTree(4, 0); err == nil {
		t.Error("stages 0 accepted")
	}
	if _, err := NewKaryTree(4, 30); err == nil {
		t.Error("absurd size accepted")
	}
}

func TestProcAttachment(t *testing.T) {
	net, _ := NewKaryTree(4, 3)
	seen := map[[2]int]bool{}
	for p := 0; p < net.N; p++ {
		sw, port := net.ProcAttach(p)
		s := net.Switches[sw]
		if s.Stage != 0 {
			t.Fatalf("proc %d attached to stage %d", p, s.Stage)
		}
		if s.Ports[port].Proc != p {
			t.Fatalf("proc %d attach mismatch", p)
		}
		key := [2]int{sw, port}
		if seen[key] {
			t.Fatalf("two procs share switch %d port %d", sw, port)
		}
		seen[key] = true
	}
}

// TestValidateCatchesCorruption breaks invariants and expects Validate to
// notice.
func TestValidateCatchesCorruption(t *testing.T) {
	net, _ := NewKaryTree(4, 2)
	// Corrupt wiring symmetry.
	sw := net.SwitchAt(0, 0)
	up := sw.PortNum(Up, 0)
	orig := sw.Ports[up].PeerPort
	sw.Ports[up].PeerPort = (orig + 1) % 8
	if err := net.Validate(); err == nil {
		t.Fatal("asymmetric wiring not detected")
	}
	sw.Ports[up].PeerPort = orig
	if err := net.Validate(); err != nil {
		t.Fatalf("restored network invalid: %v", err)
	}
	// Corrupt a reach set.
	sw.Ports[0].Reach.Add(9)
	if err := net.Validate(); err == nil {
		t.Fatal("overlapping/inflated reach not detected")
	}
}

func TestReachStructure(t *testing.T) {
	for _, stages := range []int{1, 2, 3, 4} {
		net, err := NewKaryTree(4, stages)
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range net.Switches {
			// Down reach sizes: arity^stage per down port.
			want := 1
			for i := 0; i < sw.Stage; i++ {
				want *= net.Arity
			}
			for j := 0; j < net.Arity; j++ {
				if got := sw.Ports[j].Reach.Count(); got != want {
					t.Fatalf("stage %d down reach = %d, want %d", sw.Stage, got, want)
				}
			}
			if got := sw.ReachAll().Count(); got != want*net.Arity {
				t.Fatalf("stage %d total reach = %d, want %d", sw.Stage, got, want*net.Arity)
			}
		}
	}
}

func TestAllParentsSameReach(t *testing.T) {
	net, _ := NewKaryTree(4, 3)
	for _, sw := range net.Switches {
		var first *Switch
		for j := 0; j < net.Arity; j++ {
			pt := &sw.Ports[sw.PortNum(Up, j)]
			if pt.PeerSwitch < 0 {
				continue
			}
			parent := net.Switches[pt.PeerSwitch]
			if first == nil {
				first = parent
				continue
			}
			if !first.ReachAll().Equal(parent.ReachAll()) {
				t.Fatalf("switch %d parents differ in reach", sw.ID)
			}
		}
	}
}

func TestTopStageUnconnectedUpPorts(t *testing.T) {
	net, _ := NewKaryTree(4, 2)
	top := net.SwitchAt(1, 0)
	for j := 0; j < net.Arity; j++ {
		if top.Ports[top.PortNum(Up, j)].Connected() {
			t.Fatal("top-stage up port connected")
		}
	}
}

func TestLCAStage(t *testing.T) {
	net, _ := NewKaryTree(4, 3)
	mk := func(ds ...int) bitset.Set { return bitset.FromSlice(net.N, ds) }
	cases := []struct {
		src   int
		dests bitset.Set
		want  int
	}{
		{0, mk(1), 0},           // same stage-0 switch
		{0, mk(2, 3), 0},        // same stage-0 switch
		{0, mk(4), 1},           // same 16-block, different switch
		{0, mk(15), 1},          //
		{0, mk(16), 2},          // different 16-block
		{0, mk(1, 2, 63), 2},    // spans everything
		{17, mk(16, 18, 19), 0}, // all under proc 17's switch
	}
	for _, c := range cases {
		if got := net.LCAStage(c.src, c.dests); got != c.want {
			t.Errorf("LCAStage(%d, %v) = %d, want %d", c.src, c.dests, got, c.want)
		}
	}
}

// TestDownRoutesDeliver walks the unique down-path from every top-stage
// switch to every processor using only reach sets, verifying that the reach
// tables define complete, consistent down routing.
func TestDownRoutesDeliver(t *testing.T) {
	net, _ := NewKaryTree(4, 3)
	perStage := net.N / net.Arity
	for w := 0; w < perStage; w++ {
		top := net.SwitchAt(net.Stages-1, w)
		for p := 0; p < net.N; p++ {
			sw := top
			for hops := 0; ; hops++ {
				if hops > net.Stages {
					t.Fatalf("down route from top %d to proc %d too long", w, p)
				}
				port := -1
				for j := 0; j < net.Arity; j++ {
					if sw.Ports[j].Reach.Has(p) {
						if port >= 0 {
							t.Fatalf("ambiguous down route at switch %d for proc %d", sw.ID, p)
						}
						port = j
					}
				}
				if port < 0 {
					t.Fatalf("no down route at switch %d for proc %d", sw.ID, p)
				}
				pt := &sw.Ports[port]
				if pt.Proc >= 0 {
					if pt.Proc != p {
						t.Fatalf("route to %d delivered %d", p, pt.Proc)
					}
					break
				}
				sw = net.Switches[pt.PeerSwitch]
			}
		}
	}
}

// TestWiringProperty verifies, for several shapes, that every inter-stage
// connection is a proper bijection (each down port of stage s+1 pairs with
// exactly one up port of stage s).
func TestWiringProperty(t *testing.T) {
	for _, c := range []struct{ arity, stages int }{{2, 4}, {3, 3}, {4, 3}, {5, 2}} {
		net, err := NewKaryTree(c.arity, c.stages)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < c.stages-1; s++ {
			seen := map[[2]int]bool{}
			for w := 0; w < net.N/net.Arity; w++ {
				sw := net.SwitchAt(s, w)
				for j := 0; j < net.Arity; j++ {
					pt := &sw.Ports[sw.PortNum(Up, j)]
					if pt.PeerSwitch < 0 {
						t.Fatalf("unconnected up port below top stage (s=%d)", s)
					}
					key := [2]int{pt.PeerSwitch, pt.PeerPort}
					if seen[key] {
						t.Fatalf("two up ports wired to same (%d,%d)", pt.PeerSwitch, pt.PeerPort)
					}
					seen[key] = true
				}
			}
		}
	}
}

func TestDigitHelpers(t *testing.T) {
	if digit(0b1101, 0, 2) != 1 || digit(0b1101, 1, 2) != 0 || digit(0b1101, 3, 2) != 1 {
		t.Fatal("digit wrong")
	}
	if setDigit(5, 0, 2, 4) != 6 { // 11_4 -> 12_4
		t.Fatalf("setDigit = %d", setDigit(5, 0, 2, 4))
	}
	if setDigit(5, 1, 3, 4) != 13 { // 11_4 -> 31_4
		t.Fatalf("setDigit = %d", setDigit(5, 1, 3, 4))
	}
}
