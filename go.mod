module mdworm

go 1.22
