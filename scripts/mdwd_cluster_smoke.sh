#!/usr/bin/env bash
# End-to-end smoke test of cluster mode over real sockets: one coordinator,
# two workers. A full client sweep runs through the coordinator while one
# worker is kill -9'd mid-flight, and the merged output must still be
# byte-identical to a single-node daemon's. Afterwards the coordinator's
# journal must show exactly one terminal record per dispatched shard and
# /metrics must have recorded the migration. Needs only bash, curl, and the
# go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill -9 $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/mdwd" ./cmd/mdwd
go build -o "$workdir/mdwbench" ./cmd/mdwbench

# Bind port 0 and recover each kernel-chosen address from the daemon's own
# "listening on" log line, so parallel CI jobs never collide on fixed ports.
wait_addr() { # pid logfile -> prints host:port
    local p=$1 log=$2 a i
    for i in $(seq 1 100); do
        a=$(sed -n 's/^mdwd: listening on \([^ ]*\) .*/\1/p' "$log" | head -1)
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$p" 2>/dev/null || { echo "mdwd died at startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "mdwd never reported its listen address:" >&2; cat "$log" >&2; return 1
}

wait_healthy() { # addr logfile
    for i in $(seq 1 50); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "daemon at $1 never became healthy:"; cat "$2"; return 1
}

# Single-node reference: the byte-for-byte ground truth for the sweep.
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 4 >"$workdir/single.log" 2>&1 &
single=$(wait_addr "$!" "$workdir/single.log")
wait_healthy "$single" "$workdir/single.log"
"$workdir/mdwbench" -daemon "http://$single" -exp e1,e2 -quick >"$workdir/ref.out"

# The fleet: two workers with checkpointing (so the coordinator can mirror
# mid-run state off them), one coordinator journaling to its own cache dir.
# Workers come up first so the coordinator can be pointed at their ports.
mkdir -p "$workdir/w1" "$workdir/w2" "$workdir/coord"
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$workdir/w1" -checkpoint-every 5000 >"$workdir/w1.log" 2>&1 &
w1pid=$!
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$workdir/w2" -checkpoint-every 5000 >"$workdir/w2.log" 2>&1 &
w2pid=$!
w1=$(wait_addr "$w1pid" "$workdir/w1.log")
w2=$(wait_addr "$w2pid" "$workdir/w2.log")
"$workdir/mdwd" -addr 127.0.0.1:0 -coordinator -peers "http://$w1,http://$w2" \
    -cache-dir "$workdir/coord" -heartbeat 250ms >"$workdir/coord.log" 2>&1 &
coord=$(wait_addr "$!" "$workdir/coord.log")
wait_healthy "$w1" "$workdir/w1.log"
wait_healthy "$w2" "$workdir/w2.log"
wait_healthy "$coord" "$workdir/coord.log"

# The same sweep through the coordinator, with one worker kill -9'd while
# points are still resolving.
"$workdir/mdwbench" -daemon "http://$coord" -exp e1,e2 -quick >"$workdir/cluster.out" &
benchpid=$!
sleep 0.4
kill -9 "$w2pid"
wait "$benchpid" || { echo "cluster sweep failed after worker kill:"; cat "$workdir/coord.log"; exit 1; }

cmp -s "$workdir/ref.out" "$workdir/cluster.out" || {
    echo "cluster output differs from single-node output:"
    diff "$workdir/ref.out" "$workdir/cluster.out" | head -20
    exit 1
}

# Shards owned by the dead worker migrate; fresh configs force dispatches
# onto its ring range until the migration counter moves.
for seed in $(seq 101 120); do
    body="{\"config\":{\"stages\":2,\"degree\":4,\"warmup_cycles\":200,\"measure_cycles\":800,\"drain_cycles\":50000,\"op_rate\":0.001,\"seed\":$seed}}"
    curl -fsS -o /dev/null -d "$body" "http://$coord/v1/run"
    if curl -fsS "http://$coord/metrics" | grep -q '^mdwd_shard_migrations_total [1-9]'; then
        break
    fi
done
curl -fsS "http://$coord/metrics" >"$workdir/metrics"
grep -q '^mdwd_shard_migrations_total [1-9]' "$workdir/metrics" || {
    echo "no shard migration recorded after killing a worker:"; cat "$workdir/metrics"; exit 1; }
grep -q '^mdwd_peers_healthy 1$' "$workdir/metrics" || {
    echo "dead worker still counted healthy:"; grep ^mdwd_peers "$workdir/metrics"; exit 1; }
grep -q "^mdwd_peer_healthy{peer=\"http://$w2\"} 0$" "$workdir/metrics" || {
    echo "per-peer gauge missing or wrong:"; grep ^mdwd_peer_healthy "$workdir/metrics"; exit 1; }

# Exactly-once accounting: every dispatched shard has exactly one terminal
# record (shard_done), with no duplicates — kill and migration included.
journal="$workdir/coord/journal.ndjson"
[ -s "$journal" ] || { echo "coordinator journal missing"; exit 1; }
dispatched=$(grep -o '"kind":"shard","hash":"[0-9a-f]*"' "$journal" | sort -u | sed 's/.*hash":"//;s/"//' | sort)
done_hashes=$(grep -o '"kind":"shard_done","hash":"[0-9a-f]*"' "$journal" | sed 's/.*hash":"//;s/"//' | sort)
[ -n "$dispatched" ] || { echo "no shard dispatch records in journal"; exit 1; }
if [ "$(echo "$done_hashes" | uniq -d)" != "" ]; then
    echo "duplicate shard_done records:"; echo "$done_hashes" | uniq -d; exit 1
fi
if [ "$dispatched" != "$(echo "$done_hashes" | uniq)" ]; then
    echo "dispatched shards and shard_done records disagree:"
    diff <(echo "$dispatched") <(echo "$done_hashes" | uniq) || true
    exit 1
fi
if grep -q '"kind":"shard_failed"' "$journal"; then
    echo "journal holds failed shards:"; grep '"kind":"shard_failed"' "$journal"; exit 1
fi

echo "mdwd cluster smoke: OK ($(echo "$dispatched" | wc -l) shards, one shard_done each, migration survived kill -9)"
