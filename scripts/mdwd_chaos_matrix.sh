#!/usr/bin/env bash
# Chaos matrix: run the full cluster sweep (coordinator + 2 workers) under
# three seeded network-fault schedules — latency-only, partition-then-heal,
# and a kill -9 + response-drop mix — and require each cluster output to be
# byte-identical to an undisturbed single-node daemon's. This is the PR-10
# headline guarantee exercised end to end over real sockets: under any seeded
# chaos schedule the sweep completes identically or fails loudly; it never
# hangs, duplicates, or silently drops points. Needs bash, curl, and go.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/mdwd" ./cmd/mdwd
go build -o "$workdir/mdwbench" ./cmd/mdwbench

# Bind port 0 and recover each kernel-chosen address from the daemon's own
# "listening on" log line, so parallel CI jobs never collide on fixed ports.
wait_addr() { # pid logfile -> prints host:port
    local p=$1 log=$2 a i
    for i in $(seq 1 100); do
        a=$(sed -n 's/^mdwd: listening on \([^ ]*\) .*/\1/p' "$log" | head -1)
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$p" 2>/dev/null || { echo "mdwd died at startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "mdwd never reported its listen address:" >&2; cat "$log" >&2; return 1
}

wait_healthy() { # addr logfile
    for i in $(seq 1 50); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "daemon at $1 never became healthy:"; cat "$2"; return 1
}

# Single-node baseline: the byte-for-byte ground truth every schedule is
# diffed against.
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 4 >"$workdir/single.log" 2>&1 &
singlepid=$!
single=$(wait_addr "$singlepid" "$workdir/single.log")
wait_healthy "$single" "$workdir/single.log"
"$workdir/mdwbench" -daemon "http://$single" -exp e1,e2 -quick >"$workdir/ref.out"
kill -TERM "$singlepid"
wait "$singlepid" 2>/dev/null || true

run_schedule() { # name spec seed kill|nokill
    local name=$1 spec=$2 seed=$3 killw=$4
    local dir="$workdir/$name"
    mkdir -p "$dir/w1" "$dir/w2" "$dir/coord"

    # Fresh worker cache dirs per schedule so every point is recomputed under
    # chaos rather than served from a previous schedule's cache.
    "$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$dir/w1" -checkpoint-every 5000 >"$dir/w1.log" 2>&1 &
    local w1pid=$!
    "$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$dir/w2" -checkpoint-every 5000 >"$dir/w2.log" 2>&1 &
    local w2pid=$!
    local w1 w2 coord coordpid benchpid
    w1=$(wait_addr "$w1pid" "$dir/w1.log")
    w2=$(wait_addr "$w2pid" "$dir/w2.log")
    # The chaos injector rides the coordinator's outbound transport; -peers
    # order gives the workers their chaos labels worker1, worker2.
    "$workdir/mdwd" -addr 127.0.0.1:0 -coordinator -peers "http://$w1,http://$w2" \
        -cache-dir "$dir/coord" -heartbeat 250ms \
        -chaos "$spec" -chaos-seed "$seed" >"$dir/coord.log" 2>&1 &
    coordpid=$!
    coord=$(wait_addr "$coordpid" "$dir/coord.log")
    wait_healthy "$w1" "$dir/w1.log"
    wait_healthy "$w2" "$dir/w2.log"
    wait_healthy "$coord" "$dir/coord.log"
    grep -q 'chaos enabled' "$dir/coord.log" || { echo "[$name] coordinator did not arm chaos:"; cat "$dir/coord.log"; return 1; }

    "$workdir/mdwbench" -daemon "http://$coord" -exp e1,e2 -quick >"$dir/out" &
    benchpid=$!
    if [ "$killw" = kill ]; then
        sleep 0.4
        kill -9 "$w2pid" 2>/dev/null || true
    fi
    wait "$benchpid" || { echo "[$name] cluster sweep failed under chaos:"; tail -50 "$dir/coord.log"; return 1; }

    cmp -s "$workdir/ref.out" "$dir/out" || {
        echo "[$name] cluster output differs from single-node baseline under: $spec"
        diff "$workdir/ref.out" "$dir/out" | head -20
        return 1
    }

    kill -TERM "$coordpid" "$w1pid" 2>/dev/null || true
    [ "$killw" = kill ] || kill -TERM "$w2pid" 2>/dev/null || true
    wait "$coordpid" 2>/dev/null || true
    wait "$w1pid" 2>/dev/null || true
    wait "$w2pid" 2>/dev/null || true
    echo "[$name] byte-identical (seed $seed): $spec"
}

# Schedule 1 — latency only: every dispatch to both workers is slowed for the
# whole run; nothing fails, the sweep just rides it out.
run_schedule latency "latency@0s+120s:worker1*25ms; latency@0s+120s:worker2*10ms" 1 nokill

# Schedule 2 — partition then heal: worker2 is unreachable from the
# coordinator at boot (breaker opens, worker1 absorbs the load), then the
# partition heals mid-sweep and worker2 rejoins.
run_schedule partition "partition@0s+2500ms:coordinator-worker2; latency@0s+120s:worker1*5ms" 2 nokill

# Schedule 3 — kill + drop mix: worker1's responses are dropped on the floor
# for the opening burst (completed work, lost replies — at-least-once dedup
# territory) while worker2 is kill -9'd mid-sweep.
run_schedule killdrop "drop@0s+1500ms:worker1" 3 kill

echo "mdwd chaos matrix: 3 seeded schedules, all byte-identical to the single-node baseline"
