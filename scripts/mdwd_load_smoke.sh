#!/usr/bin/env bash
# Multi-tenant load smoke: boot mdwd with a two-tenant tenants file, soak it
# for ~10s with mdwbench -load (open-loop Poisson arrivals, one Poisson
# process per tenant), and fail on any 5xx/transport error or a p99 above a
# deliberately generous floor — this is a smoke gate against regressions that
# wedge or grossly slow the scheduler, not a benchmark. Along the way, check
# that auth actually gates the API and that the per-tenant metric families
# show up. CI uploads the appended BENCH_load.json history as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/mdwd" ./cmd/mdwd
go build -o "$workdir/mdwbench" ./cmd/mdwbench

# Bind port 0 and recover the kernel-chosen address from the daemon's own
# "listening on" log line, so parallel CI jobs never collide on a fixed port.
wait_addr() { # pid logfile -> prints host:port
    local p=$1 log=$2 a i
    for i in $(seq 1 100); do
        a=$(sed -n 's/^mdwd: listening on \([^ ]*\) .*/\1/p' "$log" | head -1)
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$p" 2>/dev/null || { echo "mdwd died at startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "mdwd never reported its listen address:" >&2; cat "$log" >&2; return 1
}

cat >"$workdir/tenants" <<'EOF'
# load-smoke tenants: gold gets 4x the fair share of silver
smoke-key-gold   gold   4
smoke-key-silver silver 1 max-queued=64
EOF

"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -tenants "$workdir/tenants" >"$workdir/log" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/log")

for i in $(seq 1 50); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "mdwd died at startup:"; cat "$workdir/log"; exit 1; }
    sleep 0.2
done
curl -fsS "http://$addr/healthz" >/dev/null || { echo "mdwd never became healthy"; exit 1; }

# Auth is on: no key is a 401, a configured key is accepted.
body='{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001}}'
status=$(curl -sS -o "$workdir/unauth" -w '%{http_code}' -d "$body" "http://$addr/v1/run")
[ "$status" = 401 ] || { echo "unauthenticated run returned $status, want 401:"; cat "$workdir/unauth"; exit 1; }
grep -q '"code":"unauthorized"' "$workdir/unauth" || { echo "401 not structured:"; cat "$workdir/unauth"; exit 1; }
curl -fsS -o /dev/null -H 'Authorization: Bearer smoke-key-gold' -d "$body" "http://$addr/v1/run" \
    || { echo "authenticated run failed"; exit 1; }

# The soak proper: ~10s, two tenants, open loop. The p99 floor is generous on
# purpose — the request is a millisecond-scale simulation, so seconds of p99
# means the scheduler (or the daemon) regressed badly.
"$workdir/mdwbench" -load 10s -daemon "http://$addr" \
    -load-keys 'gold=smoke-key-gold,silver=smoke-key-silver' \
    -load-rate 40 -load-clients 4 -load-out BENCH_load.json \
    -load-fail-5xx -load-max-p99 10s \
    | tee "$workdir/soak" || { echo "load soak failed:"; cat "$workdir/log"; exit 1; }

grep -q '^gold ' "$workdir/soak" || { echo "soak report missing tenant gold:"; cat "$workdir/soak"; exit 1; }
grep -q '^silver ' "$workdir/soak" || { echo "soak report missing tenant silver:"; cat "$workdir/soak"; exit 1; }
[ -s BENCH_load.json ] || { echo "BENCH_load.json was not written"; exit 1; }

# Per-tenant observability came up with the tenants file.
curl -fsS "http://$addr/metrics" >"$workdir/metrics"
grep -q 'mdwd_tenant_weight{tenant="gold"} 4' "$workdir/metrics" \
    || { echo "per-tenant metrics missing:"; grep mdwd_tenant "$workdir/metrics" || true; exit 1; }
grep -q 'mdwd_tenant_jobs_completed{tenant="gold"}' "$workdir/metrics" \
    || { echo "per-tenant job accounting missing"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { code=$?; echo "mdwd exited $code after SIGTERM:"; cat "$workdir/log"; exit 1; }
grep -q 'drained cleanly' "$workdir/log" || { echo "no clean drain reported:"; cat "$workdir/log"; exit 1; }

echo "mdwd load smoke: 401 without key, 10s two-tenant soak clean (no 5xx, p99 under floor), tenant metrics present, graceful drain OK"
