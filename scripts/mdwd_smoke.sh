#!/usr/bin/env bash
# End-to-end smoke test of the mdwd daemon over a real socket: boot, run a
# small config twice (miss then byte-identical hit), check /metrics counters,
# then SIGTERM and require a graceful exit 0. CI runs this after the unit
# tests; it needs only bash, curl, and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

addr=127.0.0.1:18080
go build -o "$workdir/mdwd" ./cmd/mdwd
"$workdir/mdwd" -addr "$addr" -workers 2 >"$workdir/log" 2>&1 &
pid=$!

for i in $(seq 1 50); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "mdwd died at startup:"; cat "$workdir/log"; exit 1; }
    sleep 0.2
done
curl -fsS "http://$addr/healthz" >/dev/null || { echo "mdwd never became healthy"; exit 1; }

body='{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001}}'
curl -fsS -D "$workdir/h1" -o "$workdir/r1" -d "$body" "http://$addr/v1/run"
curl -fsS -D "$workdir/h2" -o "$workdir/r2" -d "$body" "http://$addr/v1/run"

grep -qi '^X-Mdwd-Cache: miss' "$workdir/h1" || { echo "first request was not a miss"; cat "$workdir/h1"; exit 1; }
grep -qi '^X-Mdwd-Cache: hit'  "$workdir/h2" || { echo "second request was not a hit"; cat "$workdir/h2"; exit 1; }
cmp -s "$workdir/r1" "$workdir/r2" || { echo "cache hit is not byte-identical"; exit 1; }

curl -fsS "http://$addr/metrics" >"$workdir/metrics"
grep -q '^mdwd_cache_hits 1$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }
grep -q '^mdwd_cache_misses 1$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { code=$?; echo "mdwd exited $code after SIGTERM:"; cat "$workdir/log"; exit 1; }
grep -q 'drained cleanly' "$workdir/log" || { echo "no clean drain reported:"; cat "$workdir/log"; exit 1; }

echo "mdwd smoke: miss/hit byte-identical, metrics correct, graceful drain OK"
