#!/usr/bin/env bash
# End-to-end smoke test of the mdwd daemon over a real socket: boot, run a
# small config twice (miss then byte-identical hit), check /metrics counters,
# then SIGTERM and require a graceful exit 0. CI runs this after the unit
# tests; it needs only bash, curl, and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/mdwd" ./cmd/mdwd

# Bind port 0 and recover the kernel-chosen address from the daemon's own
# "listening on" log line, so parallel CI jobs never collide on a fixed port.
wait_addr() { # pid logfile -> prints host:port
    local p=$1 log=$2 a i
    for i in $(seq 1 100); do
        a=$(sed -n 's/^mdwd: listening on \([^ ]*\) .*/\1/p' "$log" | head -1)
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$p" 2>/dev/null || { echo "mdwd died at startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "mdwd never reported its listen address:" >&2; cat "$log" >&2; return 1
}

"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 >"$workdir/log" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/log")

for i in $(seq 1 50); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "mdwd died at startup:"; cat "$workdir/log"; exit 1; }
    sleep 0.2
done
curl -fsS "http://$addr/healthz" >/dev/null || { echo "mdwd never became healthy"; exit 1; }

body='{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001}}'
curl -fsS -D "$workdir/h1" -o "$workdir/r1" -d "$body" "http://$addr/v1/run"
curl -fsS -D "$workdir/h2" -o "$workdir/r2" -d "$body" "http://$addr/v1/run"

grep -qi '^X-Mdwd-Cache: miss' "$workdir/h1" || { echo "first request was not a miss"; cat "$workdir/h1"; exit 1; }
grep -qi '^X-Mdwd-Cache: hit'  "$workdir/h2" || { echo "second request was not a hit"; cat "$workdir/h2"; exit 1; }
cmp -s "$workdir/r1" "$workdir/r2" || { echo "cache hit is not byte-identical"; exit 1; }

curl -fsS "http://$addr/metrics" >"$workdir/metrics"
grep -q '^mdwd_cache_hits 1$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }
grep -q '^mdwd_cache_misses 1$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }

# Fault injection: a plan keyed into the cache (miss, then byte-identical
# hit), with the drop accounting visible in the response.
fbody='{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.001,"faults_spec":"nic-stall@300+200:n3;link-down@400:sw0.p0"}}'
curl -fsS -D "$workdir/f1" -o "$workdir/fr1" -d "$fbody" "http://$addr/v1/run"
curl -fsS -D "$workdir/f2" -o "$workdir/fr2" -d "$fbody" "http://$addr/v1/run"
grep -qi '^X-Mdwd-Cache: miss' "$workdir/f1" || { echo "faulted first request was not a miss"; cat "$workdir/f1"; exit 1; }
grep -qi '^X-Mdwd-Cache: hit'  "$workdir/f2" || { echo "faulted second request was not a hit"; cat "$workdir/f2"; exit 1; }
cmp -s "$workdir/fr1" "$workdir/fr2" || { echo "faulted cache hit is not byte-identical"; exit 1; }
grep -q '"DestsDropped":[1-9]' "$workdir/fr1" || { echo "faulted run dropped nothing:"; cat "$workdir/fr1"; exit 1; }

# A wedging fault plan returns a structured 422 deadlock error without
# poisoning the job pool.
dbody='{"config":{"stages":2,"degree":4,"warmup_cycles":200,"measure_cycles":800,"drain_cycles":50000,"op_rate":0.01,"seed":3,"watchdog_limit":10000,"faults_spec":"port-stuck@300:sw0.p4;port-stuck@300:sw0.p5;port-stuck@300:sw0.p6;port-stuck@300:sw0.p7"}}'
status=$(curl -sS -o "$workdir/dr" -w '%{http_code}' -d "$dbody" "http://$addr/v1/run")
[ "$status" = 422 ] || { echo "deadlock run returned $status:"; cat "$workdir/dr"; exit 1; }
grep -q '"code":"deadlock"' "$workdir/dr" || { echo "deadlock error not structured:"; cat "$workdir/dr"; exit 1; }
curl -fsS -o /dev/null -d "$body" "http://$addr/v1/run" || { echo "pool unusable after deadlock"; exit 1; }

curl -fsS "http://$addr/metrics" >"$workdir/metrics"
grep -q '^mdwd_deadlocks_total 1$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }
grep -q '^mdwd_invariant_violations_total 0$' "$workdir/metrics" || { echo "unexpected metrics:"; cat "$workdir/metrics"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { code=$?; echo "mdwd exited $code after SIGTERM:"; cat "$workdir/log"; exit 1; }
grep -q 'drained cleanly' "$workdir/log" || { echo "no clean drain reported:"; cat "$workdir/log"; exit 1; }

# Restart over a persistent cache directory: results computed by one daemon
# generation are served byte-identical (as hits) by the next.
cachedir="$workdir/cache"
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$cachedir" >"$workdir/log2" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/log2")
for i in $(seq 1 50); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "mdwd died at restart:"; cat "$workdir/log2"; exit 1; }
    sleep 0.2
done
curl -fsS -o "$workdir/p1" -d "$body" "http://$addr/v1/run"
kill -TERM "$pid"
wait "$pid" || { code=$?; echo "mdwd exited $code after SIGTERM:"; cat "$workdir/log2"; exit 1; }

"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 -cache-dir "$cachedir" >"$workdir/log3" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/log3")
for i in $(seq 1 50); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "mdwd died at second restart:"; cat "$workdir/log3"; exit 1; }
    sleep 0.2
done
curl -fsS -D "$workdir/ph2" -o "$workdir/p2" -d "$body" "http://$addr/v1/run"
grep -qi '^X-Mdwd-Cache: hit' "$workdir/ph2" || { echo "restarted daemon missed the persisted cache"; cat "$workdir/ph2"; exit 1; }
cmp -s "$workdir/p1" "$workdir/p2" || { echo "persisted cache hit is not byte-identical"; exit 1; }
kill -TERM "$pid"
wait "$pid" || { code=$?; echo "mdwd exited $code after SIGTERM:"; cat "$workdir/log3"; exit 1; }

echo "mdwd smoke: miss/hit byte-identical, persistent cache survives restart, metrics correct, graceful drain OK"
