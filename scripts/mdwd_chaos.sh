#!/usr/bin/env bash
# Chaos test of mdwd crash-safety: kill -9 a daemon mid-job (one running and
# checkpointed, one still queued), restart it over the same cache directory,
# and require both jobs to complete on their own — the resumed results
# byte-identical to an uninterrupted daemon's, each job reported done exactly
# once. CI runs this after the unit tests; it needs bash, curl, and go.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill -9 "${pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/mdwd" ./cmd/mdwd

# Bind port 0 and recover the kernel-chosen address from the daemon's own
# "listening on" log line, so parallel CI jobs never collide on a fixed port.
wait_addr() { # pid logfile -> prints host:port
    local p=$1 log=$2 a i
    for i in $(seq 1 100); do
        a=$(sed -n 's/^mdwd: listening on \([^ ]*\) .*/\1/p' "$log" | head -1)
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$p" 2>/dev/null || { echo "mdwd died at startup:" >&2; cat "$log" >&2; return 1; }
        sleep 0.1
    done
    echo "mdwd never reported its listen address:" >&2; cat "$log" >&2; return 1
}

wait_healthy() {
    for i in $(seq 1 50); do
        curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || { echo "mdwd died at startup:"; cat "$1"; exit 1; }
        sleep 0.2
    done
    echo "mdwd never became healthy"; exit 1
}

# Long enough to be killed mid-run, small enough to finish in seconds.
bodyA='{"config":{"stages":2,"degree":4,"warmup_cycles":1000,"measure_cycles":2000000,"drain_cycles":200000,"op_rate":0.001,"seed":11}}'
bodyB='{"config":{"stages":2,"degree":4,"warmup_cycles":1000,"measure_cycles":2000000,"drain_cycles":200000,"op_rate":0.001,"seed":12}}'

# Reference results from an undisturbed daemon.
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 2 >"$workdir/ref.log" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/ref.log")
wait_healthy "$workdir/ref.log"
curl -fsS -D "$workdir/refhA" -o "$workdir/refA" -d "$bodyA" "http://$addr/v1/run"
curl -fsS -D "$workdir/refhB" -o "$workdir/refB" -d "$bodyB" "http://$addr/v1/run"
hashA=$(sed -n 's/^X-Mdwd-Hash: \([0-9a-f]*\).*/\1/pi' "$workdir/refhA")
hashB=$(sed -n 's/^X-Mdwd-Hash: \([0-9a-f]*\).*/\1/pi' "$workdir/refhB")
[ -n "$hashA" ] && [ -n "$hashB" ] || { echo "no X-Mdwd-Hash headers"; exit 1; }
kill -TERM "$pid"; wait "$pid" || true

# Chaos daemon: one worker so job A runs while job B sits queued.
cachedir="$workdir/cache"
journal="$cachedir/journal.ndjson"
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 1 -cache-dir "$cachedir" -checkpoint-every 200000 \
    >"$workdir/chaos.log" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/chaos.log")
wait_healthy "$workdir/chaos.log"
# The clients die with the daemon at kill -9; their errors are expected noise.
curl -s -o /dev/null -d "$bodyA" "http://$addr/v1/run" 2>/dev/null &
clientA=$!
# Job A must be accepted first so it owns the single worker.
for i in $(seq 1 100); do
    grep -q "\"kind\":\"running\",\"hash\":\"$hashA\"" "$journal" 2>/dev/null && break
    sleep 0.1
done
curl -s -o /dev/null -d "$bodyB" "http://$addr/v1/run" 2>/dev/null &
clientB=$!

# Wait until A has checkpointed and B is journaled accepted, then pull the rug.
for i in $(seq 1 200); do
    grep -q "\"kind\":\"checkpoint\",\"hash\":\"$hashA\"" "$journal" 2>/dev/null &&
        grep -q "\"kind\":\"accepted\",\"hash\":\"$hashB\"" "$journal" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon exited early:"; cat "$workdir/chaos.log"; exit 1; }
    sleep 0.05
done
grep -q "\"kind\":\"checkpoint\",\"hash\":\"$hashA\"" "$journal" || { echo "job A never checkpointed"; cat "$journal"; exit 1; }
grep -q "\"kind\":\"accepted\",\"hash\":\"$hashB\"" "$journal" || { echo "job B never journaled"; cat "$journal"; exit 1; }
if [ -f "$cachedir/$hashA.json" ]; then
    echo "job A finished before the kill; nothing was interrupted"; exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
wait "$clientA" 2>/dev/null || true
wait "$clientB" 2>/dev/null || true

# Restart over the same directory: recovery must finish both jobs unprompted.
"$workdir/mdwd" -addr 127.0.0.1:0 -workers 1 -cache-dir "$cachedir" -checkpoint-every 200000 \
    >"$workdir/recover.log" 2>&1 &
pid=$!
addr=$(wait_addr "$pid" "$workdir/recover.log")
wait_healthy "$workdir/recover.log"
for i in $(seq 1 600); do
    [ -f "$cachedir/$hashA.json" ] && [ -f "$cachedir/$hashB.json" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "recovered daemon exited early:"; cat "$workdir/recover.log"; exit 1; }
    sleep 0.1
done
[ -f "$cachedir/$hashA.json" ] || { echo "interrupted job A never completed"; cat "$journal"; exit 1; }
[ -f "$cachedir/$hashB.json" ] || { echo "queued job B never completed"; cat "$journal"; exit 1; }

cmp -s "$workdir/refA" "$cachedir/$hashA.json" || { echo "resumed job A result differs from reference"; exit 1; }
cmp -s "$workdir/refB" "$cachedir/$hashB.json" || { echo "recovered job B result differs from reference"; exit 1; }

# Each job reported done exactly once: nothing lost, nothing double-counted.
for h in "$hashA" "$hashB"; do
    n=$(grep -c "\"kind\":\"done\",\"hash\":\"$h\"" "$journal" || true)
    [ "$n" = 1 ] || { echo "job $h has $n done records, want 1:"; cat "$journal"; exit 1; }
done

kill -TERM "$pid"
wait "$pid" || { code=$?; echo "recovered mdwd exited $code after SIGTERM:"; cat "$workdir/recover.log"; exit 1; }

echo "mdwd chaos: kill -9 mid-job recovered; resumed results byte-identical, each job done exactly once"
