#!/bin/sh
# perf_gate.sh - CI performance gate for the simulation kernel.
#
# Runs a quick four-experiment sweep single-threaded, appends the timing
# record to a scratch bench history, and fails if simulated cycles/sec
# falls below the committed floor. The floor is deliberately far under
# the event kernel's measured rate so shared CI runners don't flake, yet
# high enough that losing the calendar-queue scheduler or the zero-alloc
# switch data paths trips it.
#
# Override the floor (cycles/sec) with PERF_GATE_FLOOR, e.g. for a local
# run on a loaded laptop: PERF_GATE_FLOOR=1 scripts/perf_gate.sh
set -eu

cd "$(dirname "$0")/.."

FLOOR="${PERF_GATE_FLOOR:-40000}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go run ./cmd/mdwbench -quick -workers 1 -exp e1,e3,e5,e8 -bench-out "$OUT" >/dev/null

CPS="$(grep -o '"cycles_per_sec": *[0-9.eE+-]*' "$OUT" | tail -1 | sed 's/.*: *//')"
if [ -z "$CPS" ]; then
    echo "perf_gate: no cycles_per_sec in bench output" >&2
    exit 1
fi

echo "perf_gate: quick sweep ran at $CPS cycles/sec (floor $FLOOR)"
if ! awk -v c="$CPS" -v f="$FLOOR" 'BEGIN { exit !(c+0 >= f+0) }'; then
    echo "perf_gate: FAIL - $CPS cycles/sec is below the floor of $FLOOR" >&2
    exit 1
fi
echo "perf_gate: PASS"
