#!/bin/sh
# perf_gate.sh - CI performance gate for the simulation kernel.
#
# Runs two quick sweeps single-threaded, appends each timing record to a
# scratch bench history, and fails if simulated cycles/sec falls below the
# committed floor:
#
#   1. a four-experiment paper sweep (e1,e3,e5,e8) guarding the stochastic
#      traffic data paths, and
#   2. a barrier+broadcast collective sweep (c1,c2) guarding the collective
#      driver's phase machinery.
#
# The floors are deliberately far under the event kernel's measured rates so
# shared CI runners don't flake, yet high enough that losing the
# calendar-queue scheduler or the zero-alloc switch data paths trips them.
#
# Override the floors (cycles/sec) with PERF_GATE_FLOOR and
# PERF_GATE_COLL_FLOOR, e.g. for a local run on a loaded laptop:
# PERF_GATE_FLOOR=1 PERF_GATE_COLL_FLOOR=1 scripts/perf_gate.sh
set -eu

cd "$(dirname "$0")/.."

FLOOR="${PERF_GATE_FLOOR:-40000}"
COLL_FLOOR="${PERF_GATE_COLL_FLOOR:-40000}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# gate <label> <experiments> <floor>: quick single-threaded sweep, then
# compare the recorded cycles/sec against the floor.
gate() {
    label="$1"; exps="$2"; floor="$3"

    go run ./cmd/mdwbench -quick -workers 1 -exp "$exps" -bench-out "$OUT" >/dev/null

    cps="$(grep -o '"cycles_per_sec": *[0-9.eE+-]*' "$OUT" | tail -1 | sed 's/.*: *//')"
    if [ -z "$cps" ]; then
        echo "perf_gate: no cycles_per_sec in bench output for $label sweep" >&2
        exit 1
    fi

    echo "perf_gate: $label sweep ($exps) ran at $cps cycles/sec (floor $floor)"
    if ! awk -v c="$cps" -v f="$floor" 'BEGIN { exit !(c+0 >= f+0) }'; then
        echo "perf_gate: FAIL - $label sweep at $cps cycles/sec is below the floor of $floor" >&2
        exit 1
    fi
}

gate paper e1,e3,e5,e8 "$FLOOR"
gate collective c1,c2 "$COLL_FLOOR"
echo "perf_gate: PASS"
