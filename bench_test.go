package mdworm_test

import (
	"fmt"
	"io"
	"testing"

	"mdworm"
)

// The Benchmark functions below regenerate the paper's tables and figures
// (one benchmark per experiment) in quick mode, so `go test -bench=.`
// exercises the entire evaluation pipeline. `cmd/mdwbench` produces the
// full-fidelity versions recorded in EXPERIMENTS.md.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := mdworm.RunExperiment(id, mdworm.ExperimentOptions{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			t.Format(benchWriter{b})
		}
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func BenchmarkE1MultipleMulticast(b *testing.B) { benchExperiment(b, "e1") }
func BenchmarkE2Throughput(b *testing.B)        { benchExperiment(b, "e2") }
func BenchmarkE3BimodalUnicast(b *testing.B)    { benchExperiment(b, "e3") }
func BenchmarkE4BimodalMulticast(b *testing.B)  { benchExperiment(b, "e4") }
func BenchmarkE5Degree(b *testing.B)            { benchExperiment(b, "e5") }
func BenchmarkE6Length(b *testing.B)            { benchExperiment(b, "e6") }
func BenchmarkE7SystemSize(b *testing.B)        { benchExperiment(b, "e7") }
func BenchmarkE8SingleMulticast(b *testing.B)   { benchExperiment(b, "e8") }
func BenchmarkA1CentralBufferSize(b *testing.B) { benchExperiment(b, "a1") }
func BenchmarkA2ChunkSize(b *testing.B)         { benchExperiment(b, "a2") }
func BenchmarkA3ReplicateOnUpPath(b *testing.B) { benchExperiment(b, "a3") }
func BenchmarkA4UpPortPolicy(b *testing.B)      { benchExperiment(b, "a4") }
func BenchmarkA5Encoding(b *testing.B)          { benchExperiment(b, "a5") }
func BenchmarkA6SoftwareOverhead(b *testing.B)  { benchExperiment(b, "a6") }
func BenchmarkA7HotSpot(b *testing.B)           { benchExperiment(b, "a7") }
func BenchmarkA8Barrier(b *testing.B)           { benchExperiment(b, "a8") }
func BenchmarkA9Irregular(b *testing.B)         { benchExperiment(b, "a9") }
func BenchmarkA10SyncReplication(b *testing.B)  { benchExperiment(b, "a10") }
func BenchmarkA11BufferBandwidth(b *testing.B)  { benchExperiment(b, "a11") }
func BenchmarkC1Barrier(b *testing.B)           { benchExperiment(b, "c1") }
func BenchmarkC2Broadcast(b *testing.B)         { benchExperiment(b, "c2") }
func BenchmarkC3AllReduce(b *testing.B)         { benchExperiment(b, "c3") }
func BenchmarkC4ScatterGather(b *testing.B)     { benchExperiment(b, "c4") }
func BenchmarkC5Skew(b *testing.B)              { benchExperiment(b, "c5") }
func BenchmarkC6Background(b *testing.B)        { benchExperiment(b, "c6") }

// BenchmarkRunAllQuick regenerates the entire quick-mode evaluation through
// the shared worker pool — the end-to-end number behind BENCH_sweep.json.
// Points/sec and cycles/sec are reported as benchmark metrics.
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, stats, err := mdworm.RunExperiments(mdworm.ExperimentIDs(),
			mdworm.ExperimentOptions{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != len(mdworm.ExperimentIDs()) {
			b.Fatalf("got %d tables", len(tables))
		}
		if i == 0 {
			b.ReportMetric(stats.PointsPerSec(), "points/s")
			b.ReportMetric(stats.CyclesPerSec(), "simcycles/s")
		}
	}
}

// BenchmarkSimulationCycles measures raw simulator speed: cycles per second
// for a loaded 64-node central-buffer system.
func BenchmarkSimulationCycles(b *testing.B) {
	for _, arch := range []struct {
		name string
		a    mdworm.SwitchArch
	}{
		{"central-buffer", mdworm.CentralBuffer},
		{"input-buffer", mdworm.InputBuffer},
	} {
		b.Run(arch.name, func(b *testing.B) {
			cfg := mdworm.DefaultConfig()
			cfg.Arch = arch.a
			cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.15)
			cfg.WarmupCycles = 0
			cfg.MeasureCycles = int64(b.N)
			cfg.DrainCycles = 10_000_000
			sim, err := mdworm.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N), "cycles")
		})
	}
}

// BenchmarkSingleOp measures the end-to-end cost of simulating one multicast
// on an idle network for each scheme.
func BenchmarkSingleOp(b *testing.B) {
	for _, sc := range []struct {
		name   string
		scheme mdworm.Scheme
	}{
		{"hw-bitstring", mdworm.HardwareBitString},
		{"hw-multiport", mdworm.HardwareMultiport},
		{"sw-binomial", mdworm.SoftwareBinomial},
	} {
		b.Run(sc.name, func(b *testing.B) {
			cfg := mdworm.DefaultConfig()
			cfg.Scheme = sc.scheme
			cfg.Traffic.OpRate = 0
			sim, err := mdworm.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			dests := []int{1, 5, 9, 17, 23, 42, 55, 63}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sim.RunOp(0, dests, true, 64, 1_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Example output shape, kept compiling against the public API.
var _ = fmt.Sprintf
var _ io.Writer = benchWriter{}
