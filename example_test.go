package mdworm_test

import (
	"fmt"

	"mdworm"
)

// ExampleNew runs the baseline system at a light multiple-multicast load
// and prints whether every operation completed.
func ExampleNew() {
	cfg := mdworm.DefaultConfig()
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2000
	cfg.Traffic.MulticastFraction = 1.0
	cfg.Traffic.Degree = 8
	cfg.Traffic.OpRate = cfg.Traffic.RateForLoad(0.1)

	sim, err := mdworm.New(cfg)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("all multicasts delivered:", res.Multicast.OpsCompleted == res.Multicast.OpsGenerated)
	fmt.Println("saturated:", res.Saturated)
	// Output:
	// all multicasts delivered: true
	// saturated: false
}

// ExampleSimulator_RunOp measures one hardware multicast on an idle network.
func ExampleSimulator_RunOp() {
	cfg := mdworm.DefaultConfig()
	cfg.Traffic.OpRate = 0 // idle network
	sim, err := mdworm.New(cfg)
	if err != nil {
		panic(err)
	}
	latency, op, err := sim.RunOp(0, []int{1, 9, 33, 63}, true, 64, 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("worms injected:", op.MessagesSent)
	fmt.Println("latency positive:", latency > 0)
	// Output:
	// worms injected: 1
	// latency positive: true
}

// ExampleSimulator_RunBarrier compares the two barrier schemes.
func ExampleSimulator_RunBarrier() {
	cfg := mdworm.DefaultConfig()
	cfg.Traffic.OpRate = 0
	sim, err := mdworm.New(cfg)
	if err != nil {
		panic(err)
	}
	hw, err := sim.RunBarrier(mdworm.BarrierHardwareRelease, 2_000_000)
	if err != nil {
		panic(err)
	}
	sim2, _ := mdworm.New(cfg)
	sw, err := sim2.RunBarrier(mdworm.BarrierSoftware, 2_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("hardware release faster:", hw < sw)
	// Output:
	// hardware release faster: true
}
